// Work-sharing microbenchmark: N identical recurring jobs submitted
// concurrently with the in-flight registry on vs off. With sharing off
// every submission compiles and executes the plan; with sharing on one
// leader executes and the rest adopt its result, so the execution count
// collapses to (nearly) one. A second section drives build piggybacking
// deterministically — a synthetic foreign builder holds the build lock,
// the denied job waits, and the builder's registered view turns the wait
// into a reuse hit — and the fault section shows both sharing seams
// degrading without losing a job or a byte. Writes BENCH_sharing.json
// for the CI bench-smoke artifact.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "fault/fault_injector.h"
#include "obs/export.h"
#include "plan/plan_builder.h"

namespace cloudviews {
namespace bench {
namespace {

Schema ClickSchema() {
  return Schema({{"user", DataType::kInt64},
                 {"page", DataType::kString},
                 {"latency", DataType::kInt64},
                 {"when", DataType::kDate}});
}

void WriteClicks(StorageManager* storage, const std::string& date,
                 size_t rows) {
  Rng rng(Hash128Hasher()(Hash128{11, 5}) + rows);
  Batch b(ClickSchema());
  int64_t day = 0;
  ParseDate(date, &day);
  static const char* kPages[] = {"/home", "/search", "/cart", "/about"};
  for (size_t i = 0; i < rows; ++i) {
    (void)b.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(100))),
                       Value::String(kPages[rng.Uniform(4)]),
                       Value::Int64(static_cast<int64_t>(rng.Uniform(500))),
                       Value::Date(day)});
  }
  (void)storage->WriteStream(MakeStreamData(
      "clicks_" + date, "guid-clicks_" + date, ClickSchema(), {b},
      storage->clock()->Now()));
}

PlanNodePtr SharedAgg(const std::string& date) {
  return PlanBuilder::Extract("clicks_{date}", "clicks_" + date,
                              "guid-clicks_" + date, ClickSchema())
      .Filter(Gt(Col("latency"), Lit(int64_t{50})))
      .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"},
                            {AggFunc::kSum, Col("latency"), "total"}})
      .Build();
}

JobDefinition MakeJob(const std::string& id, PlanNodePtr plan) {
  JobDefinition def;
  def.template_id = id;
  def.vc = "vc-" + id;
  def.user = "u-" + id;
  def.logical_plan = std::move(plan);
  return def;
}

JobDefinition RecurringJob(const std::string& date) {
  return MakeJob("jobA", PlanBuilder::From(SharedAgg(date))
                             .Sort({{"n", false}})
                             .Output("A_" + date)
                             .Build());
}

JobDefinition OverlappingJob(const std::string& date) {
  return MakeJob("jobB", PlanBuilder::From(SharedAgg(date))
                             .Filter(Gt(Col("n"), Lit(int64_t{0})))
                             .Output("B_" + date)
                             .Build());
}

/// Canonical row-sorted rendering of a stored stream for cross-instance
/// output comparison.
std::string Fingerprint(StorageManager* storage, const std::string& stream) {
  auto open = storage->OpenStream(stream);
  if (!open.ok()) return "<unreadable: " + open.status().ToString() + ">";
  Batch all = CombineBatches((*open)->schema, (*open)->batches);
  std::vector<SortKey> keys;
  for (const auto& f : (*open)->schema.fields()) {
    keys.push_back({f.name, /*ascending=*/true});
  }
  all = SortBatch(all, keys);
  std::string out;
  for (size_t r = 0; r < all.num_rows(); ++r) {
    for (const Value& v : all.GetRow(r)) out += v.ToString() + "|";
    out += "\n";
  }
  return out;
}

constexpr int kFleet = 12;
constexpr size_t kRows = 30000;  // heavy input: the leader executes long
                                 // enough for the fleet to join as followers

CloudViewsConfig BenchConfig() {
  CloudViewsConfig config;
  config.analyzer.selection.top_k = 1;
  config.analyzer.selection.min_frequency = 2;
  return config;
}

uint64_t CounterValue(CloudViews* cv, const char* name) {
  return cv->metrics()->GetCounter(name, {}, "")->value();
}

struct FleetResult {
  std::string mode;
  int jobs = 0;
  int succeeded = 0;
  int failed = 0;
  uint64_t executions = 0;  // leaders + degraded followers (+ all, when off)
  uint64_t followers_adopted = 0;
  uint64_t leader_failures = 0;
  double wall_seconds = 0;
  std::string fingerprint;
};

/// Submits `kFleet` identical copies of the day-1 recurring job at once and
/// reports how many actually executed. `injector` (optional) is armed by
/// the caller before the fleet runs.
FleetResult RunFleet(const std::string& mode, bool sharing,
                     fault::FaultInjector* injector) {
  CloudViewsConfig config = BenchConfig();
  config.fault = injector;
  CloudViews cv(config);
  WriteClicks(cv.storage(), "2018-01-01", kRows);

  std::vector<JobDefinition> defs(kFleet, RecurringJob("2018-01-01"));
  JobServiceOptions options;
  options.enable_inflight_sharing = sharing;
  double start = MonotonicNowSeconds();
  auto results = cv.job_service()->SubmitConcurrent(defs, options);
  FleetResult out;
  out.mode = mode;
  out.wall_seconds = MonotonicNowSeconds() - start;
  for (const auto& r : results) {
    ++out.jobs;
    if (r.ok()) {
      ++out.succeeded;
    } else {
      ++out.failed;
    }
  }
  uint64_t leaders = CounterValue(&cv, "cv_sharing_leader_total");
  uint64_t degraded = CounterValue(&cv, "cv_sharing_follower_degraded_total");
  uint64_t followers = CounterValue(&cv, "cv_sharing_follower_total");
  out.executions = sharing ? leaders + degraded
                           : static_cast<uint64_t>(out.succeeded);
  out.followers_adopted = followers - degraded;
  out.leader_failures = CounterValue(&cv, "cv_sharing_leader_failures_total");
  out.fingerprint = Fingerprint(cv.storage(), "A_2018-01-01");
  return out;
}

struct PiggybackResult {
  std::string mode;
  uint64_t waits = 0;
  uint64_t hits = 0;
  uint64_t timeouts = 0;
  uint64_t abandoned = 0;
  bool ok = false;
  std::string fingerprint;
};

/// Drives one deterministic piggyback scenario: day-1 history is mined, a
/// synthetic foreign builder (job 9999) holds the day-2 build lock, and
/// the overlapping job is submitted with piggybacking on. `resolve` then
/// decides how the wait ends: the builder registers its view ("hit"),
/// abandons the lock ("abandoned"), or does nothing and the injected
/// timeout fires ("timeout").
PiggybackResult RunPiggyback(const std::string& mode,
                             fault::FaultInjector* injector,
                             double wait_seconds, bool register_view,
                             bool abandon) {
  // Donor instance: materializes the day-2 view for real, which yields the
  // exact build-lock signatures plus builder-identical view bytes. (The
  // annotation hashes the optimized subtree, so they cannot be recomputed
  // from the logical plan here.)
  CloudViews donor(BenchConfig());
  WriteClicks(donor.storage(), "2018-01-01", 2000);
  (void)donor.Submit(RecurringJob("2018-01-01"));
  (void)donor.Submit(OverlappingJob("2018-01-01"));
  donor.RunAnalyzerAndLoad();
  WriteClicks(donor.storage(), "2018-01-02", 2000);
  auto built = donor.Submit(RecurringJob("2018-01-02"));
  if (!built.ok() || built->views_materialized != 1 ||
      donor.metadata()->ListViews().size() != 1) {
    std::fprintf(stderr, "donor failed to materialize the day-2 view\n");
    std::exit(1);
  }
  MaterializedViewInfo view = donor.metadata()->ListViews()[0];
  auto view_stream = donor.storage()->OpenStream(view.path);
  if (!view_stream.ok()) {
    std::fprintf(stderr, "donor view unreadable\n");
    std::exit(1);
  }

  CloudViewsConfig config = BenchConfig();
  config.fault = injector;
  CloudViews cv(config);
  WriteClicks(cv.storage(), "2018-01-01", 2000);
  (void)cv.Submit(RecurringJob("2018-01-01"));
  (void)cv.Submit(OverlappingJob("2018-01-01"));
  cv.RunAnalyzerAndLoad();
  WriteClicks(cv.storage(), "2018-01-02", 2000);
  if (!cv.metadata()->ProposeMaterialize(view.normalized_signature,
                                         view.precise_signature, 9999, 9999)) {
    std::fprintf(stderr, "synthetic builder failed to take the lock\n");
    std::exit(1);
  }

  JobServiceOptions options;
  options.enable_cloudviews = true;
  options.enable_piggyback = true;
  options.piggyback_wait_seconds = wait_seconds;
  Result<JobResult> result = Status::Internal("not run");
  std::thread submitter([&] {
    result = cv.job_service()->SubmitJob(OverlappingJob("2018-01-02"),
                                         options);
  });
  // The wait loop re-checks catalog state, so resolving after the denial
  // is observed exercises the real wake-up path.
  while (cv.metadata()->counters().locks_denied < 1) {
    std::this_thread::yield();
  }
  if (register_view) {
    std::string path = "/views/" + view.normalized_signature.ToHex() + "/" +
                       view.precise_signature.ToHex() + "_9999.ss";
    (void)cv.storage()->WriteStream(MakeStreamData(
        path, "guid-piggyback-view", (*view_stream)->schema,
        (*view_stream)->batches, cv.clock()->Now()));
    MaterializedViewInfo info = view;
    info.path = path;
    info.producer_job_id = 9999;
    (void)cv.metadata()->ReportMaterialized(info, 0);
  } else if (abandon) {
    cv.metadata()->AbandonLock(view.precise_signature, 9999);
  }
  submitter.join();
  if (!register_view && !abandon) {
    cv.metadata()->AbandonLock(view.precise_signature, 9999);
  }

  PiggybackResult out;
  out.mode = mode;
  out.ok = result.ok();
  if (result.ok()) {
    out.waits = static_cast<uint64_t>(result->piggyback_waits);
    out.hits = static_cast<uint64_t>(result->piggyback_hits);
    out.timeouts = static_cast<uint64_t>(result->piggyback_timeouts);
    out.abandoned = static_cast<uint64_t>(result->piggyback_abandoned);
  }
  out.fingerprint = Fingerprint(cv.storage(), "B_2018-01-02");
  return out;
}

void PrintFleet(const FleetResult& f) {
  std::printf(
      "  %-18s jobs=%d ok=%d failed=%d executions=%llu adopted=%llu "
      "leader_failures=%llu wall=%.3fs\n",
      f.mode.c_str(), f.jobs, f.succeeded, f.failed,
      static_cast<unsigned long long>(f.executions),
      static_cast<unsigned long long>(f.followers_adopted),
      static_cast<unsigned long long>(f.leader_failures), f.wall_seconds);
}

void PrintPiggyback(const PiggybackResult& p) {
  std::printf(
      "  %-18s ok=%d waits=%llu hits=%llu timeouts=%llu abandoned=%llu\n",
      p.mode.c_str(), p.ok ? 1 : 0, static_cast<unsigned long long>(p.waits),
      static_cast<unsigned long long>(p.hits),
      static_cast<unsigned long long>(p.timeouts),
      static_cast<unsigned long long>(p.abandoned));
}

void WriteFleet(FILE* f, const FleetResult& m, const char* trailer) {
  std::fprintf(f,
               "    {\"mode\": \"%s\", \"jobs\": %d, \"succeeded\": %d, "
               "\"failed\": %d, \"executions\": %llu, "
               "\"followers_adopted\": %llu, \"leader_failures\": %llu, "
               "\"wall_seconds\": %.4f}%s\n",
               m.mode.c_str(), m.jobs, m.succeeded, m.failed,
               static_cast<unsigned long long>(m.executions),
               static_cast<unsigned long long>(m.followers_adopted),
               static_cast<unsigned long long>(m.leader_failures),
               m.wall_seconds, trailer);
}

void WritePiggyback(FILE* f, const PiggybackResult& p, const char* trailer) {
  std::fprintf(f,
               "    {\"mode\": \"%s\", \"ok\": %s, \"waits\": %llu, "
               "\"hits\": %llu, \"timeouts\": %llu, \"abandoned\": %llu}%s\n",
               p.mode.c_str(), p.ok ? "true" : "false",
               static_cast<unsigned long long>(p.waits),
               static_cast<unsigned long long>(p.hits),
               static_cast<unsigned long long>(p.timeouts),
               static_cast<unsigned long long>(p.abandoned), trailer);
}

int Run() {
  FigureHeader("micro", "work sharing: concurrent in-flight jobs",
               "identical concurrent submissions collapse to one execution "
               "(leader/follower adoption), and lock-denied jobs piggyback "
               "on the live builder's view instead of running reuse-blind "
               "(Sec 6: concurrent materialization coordination)");

  // --- Fleet: N identical concurrent submissions --------------------------
  FleetResult off = RunFleet("sharing_off", false, nullptr);
  FleetResult on = RunFleet("sharing_on", true, nullptr);

  // Leader crash injected on the first fan-out (crash=true: the leader
  // process dies, its own job fails, followers degrade and still succeed).
  fault::FaultInjector crash_injector(29);
  {
    fault::FaultSpec spec;
    spec.trigger_every = 1;
    spec.max_fires = 1;
    spec.crash = true;
    spec.message = "leader process died";
    crash_injector.Arm(fault::points::kSharingLeaderCrash, spec);
  }
  FleetResult crash = RunFleet("sharing_leader_crash", true, &crash_injector);

  PrintFleet(off);
  PrintFleet(on);
  PrintFleet(crash);

  // --- Piggyback: denied job waits on the live builder ---------------------
  PiggybackResult hit =
      RunPiggyback("piggyback_hit", nullptr, 30, true, false);
  PiggybackResult abandoned =
      RunPiggyback("piggyback_abandoned", nullptr, 30, false, true);
  fault::FaultInjector timeout_injector(31);
  {
    fault::FaultSpec spec;
    spec.trigger_every = 1;
    timeout_injector.Arm(fault::points::kSharingPiggybackTimeout, spec);
  }
  PiggybackResult timeout = RunPiggyback("piggyback_injected_timeout",
                                         &timeout_injector, 600, false, false);
  PrintPiggyback(hit);
  PrintPiggyback(abandoned);
  PrintPiggyback(timeout);

  PaperVsMeasured(
      "executions for " + std::to_string(kFleet) + " identical jobs",
      "shared work runs once",
      std::to_string(off.executions) + " -> " + std::to_string(on.executions));

  FILE* f = std::fopen("BENCH_sharing.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_sharing.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"inflight_sharing\",\n");
  std::fprintf(f, "  \"fleet_size\": %d,\n", kFleet);
  std::fprintf(f, "  \"input_rows\": %zu,\n", kRows);
  std::fprintf(f, "  \"fleet_modes\": [\n");
  WriteFleet(f, off, ",");
  WriteFleet(f, on, ",");
  WriteFleet(f, crash, "");
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"piggyback_modes\": [\n");
  WritePiggyback(f, hit, ",");
  WritePiggyback(f, abandoned, ",");
  WritePiggyback(f, timeout, "");
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote BENCH_sharing.json\n");

  // Smoke gates. Work sharing must collapse the fleet: far fewer
  // executions than submissions, with at least one real adoption.
  if (off.failed != 0 || on.failed != 0) {
    std::fprintf(stderr, "a fleet job failed without injected faults\n");
    return 1;
  }
  if (off.executions != kFleet) {
    std::fprintf(stderr, "sharing_off must execute every submission\n");
    return 1;
  }
  if (on.executions > kFleet / 2 || on.followers_adopted == 0) {
    std::fprintf(stderr,
                 "sharing_on did not collapse the fleet (executions=%llu, "
                 "adopted=%llu)\n",
                 static_cast<unsigned long long>(on.executions),
                 static_cast<unsigned long long>(on.followers_adopted));
    return 1;
  }
  // Leader crash: exactly the leader's job fails; everyone else degrades
  // to independent execution and succeeds.
  if (crash.failed != 1 || crash.succeeded != kFleet - 1 ||
      crash.leader_failures == 0) {
    std::fprintf(stderr, "leader crash must fail exactly the leader\n");
    return 1;
  }
  // Piggybacking: the wait happened and each scenario resolved as driven.
  if (!hit.ok || hit.waits != 1 || hit.hits != 1) {
    std::fprintf(stderr, "piggyback hit scenario did not reuse the view\n");
    return 1;
  }
  if (!abandoned.ok || abandoned.waits != 1 || abandoned.abandoned != 1) {
    std::fprintf(stderr, "piggyback abandon scenario did not fall back\n");
    return 1;
  }
  if (!timeout.ok || timeout.waits != 1 || timeout.timeouts != 1) {
    std::fprintf(stderr, "injected piggyback timeout did not fire\n");
    return 1;
  }
  // Byte-identity: sharing, degradation, and piggybacking never change
  // output bytes.
  if (on.fingerprint != off.fingerprint ||
      crash.fingerprint != off.fingerprint) {
    std::fprintf(stderr, "fleet outputs diverged across sharing modes\n");
    return 1;
  }
  if (hit.fingerprint != abandoned.fingerprint ||
      hit.fingerprint != timeout.fingerprint) {
    std::fprintf(stderr, "piggyback outputs diverged across scenarios\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
