#ifndef CLOUDVIEWS_NET_OUTCOME_H_
#define CLOUDVIEWS_NET_OUTCOME_H_

#include "net/wire.h"
#include "runtime/job_service.h"
#include "storage/storage_manager.h"

namespace cloudviews {
namespace net {

/// \brief Projects a JobResult onto the wire's deterministic/timing split.
///
/// `OutcomeFromJobResult` fills the deterministic slice only — counters,
/// catalog epoch, and a content fingerprint of the job's output stream
/// (HashBuilder over the schema and every row value in storage order).
/// The fingerprint is what lets the e2e test assert that a wire submission
/// produced byte-for-byte the same rows as an in-process SubmitJob, without
/// shipping result data over the wire.
JobOutcome OutcomeFromJobResult(const JobResult& result,
                                const StorageManager* storage);

/// Fills the nondeterministic wall-clock slice (queue_seconds is the
/// server's to stamp; left 0 here).
WireTimings TimingsFromJobResult(const JobResult& result);

/// Stable content hash of one stream: schema fields, then every value of
/// every row, batch by batch. Null rows hash distinctly from zero values.
Hash128 FingerprintStream(const StreamData& stream);

}  // namespace net
}  // namespace cloudviews

#endif  // CLOUDVIEWS_NET_OUTCOME_H_
