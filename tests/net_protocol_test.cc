/// Protocol-hardening tests for the wire codec and the server's session
/// layer: round-trips for every message, then the malformed matrix —
/// truncated frames, hostile length prefixes, partial reads, unknown tags,
/// version mismatches. Every case must end in a typed error or a clean
/// close, never a crash (CI runs this under ASan/UBSan and TSan).

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/socket.h"
#include "net/wire.h"
#include "tests/net_test_util.h"

namespace cloudviews {
namespace net {
namespace {

using testing_util::NetSubmit;
using testing_util::ServerFixture;
using testing_util::StartServerFixture;

// ---------------------------------------------------------------------------
// Codec round-trips

SubmitRequest FullSubmitRequest() {
  SubmitRequest req;
  req.script = "SELECT 1; -- {date}";
  req.params.push_back({"date", WireParamKind::kDate, "2024-06-30", 0});
  req.params.push_back({"limit", WireParamKind::kInt, "", -42});
  req.params.push_back({"tag", WireParamKind::kString, "blue", 0});
  req.template_id = "tmpl-7";
  req.cluster = "cosmos09";
  req.business_unit = "bing";
  req.vc = "vc-ads";
  req.user = "alice";
  req.recurring_instance = 17;
  req.recurrence_period_seconds = 3600;
  req.tags = {"daily", "p1"};
  req.enable_cloudviews = false;
  req.wait = false;
  return req;
}

TEST(WireCodec, SubmitRequestRoundTrip) {
  SubmitRequest req = FullSubmitRequest();
  WireWriter w;
  EncodeSubmitRequest(req, &w);
  SubmitRequest out;
  ASSERT_TRUE(DecodeSubmitRequest(w.bytes(), &out).ok());
  EXPECT_EQ(out.script, req.script);
  ASSERT_EQ(out.params.size(), 3u);
  EXPECT_EQ(out.params[0].name, "date");
  EXPECT_EQ(out.params[0].kind, WireParamKind::kDate);
  EXPECT_EQ(out.params[0].text, "2024-06-30");
  EXPECT_EQ(out.params[1].kind, WireParamKind::kInt);
  EXPECT_EQ(out.params[1].int_value, -42);
  EXPECT_EQ(out.params[2].text, "blue");
  EXPECT_EQ(out.template_id, "tmpl-7");
  EXPECT_EQ(out.cluster, "cosmos09");
  EXPECT_EQ(out.business_unit, "bing");
  EXPECT_EQ(out.vc, "vc-ads");
  EXPECT_EQ(out.user, "alice");
  EXPECT_EQ(out.recurring_instance, 17);
  EXPECT_EQ(out.recurrence_period_seconds, 3600);
  EXPECT_EQ(out.tags, (std::vector<std::string>{"daily", "p1"}));
  EXPECT_FALSE(out.enable_cloudviews);
  EXPECT_FALSE(out.wait);
}

JobOutcome FullOutcome() {
  JobOutcome o;
  o.job_id = 9;
  o.catalog_epoch = 4;
  o.output_rows = 1234;
  o.output_bytes = 56789;
  o.output_fingerprint = {0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  o.views_reused = 1;
  o.views_materialized = 2;
  o.reuse_rejected_by_cost = 3;
  o.materialize_lock_denied = 4;
  o.candidates_filtered = 5;
  o.containment_verified = 6;
  o.containment_rejected = 7;
  o.views_reused_subsumed = 8;
  o.compensation_nodes_added = 9;
  o.views_fallback = 10;
  o.lookup_degraded = true;
  o.plan_cache_hit = true;
  return o;
}

TEST(WireCodec, SubmitResultRoundTrip) {
  SubmitResultResponse resp;
  resp.ticket = 77;
  resp.outcome = FullOutcome();
  resp.timings = {0.125, 2.5, 0.001, 0.0005, 0.25, 1e9};
  WireWriter w;
  EncodeSubmitResultResponse(resp, &w);
  SubmitResultResponse out;
  ASSERT_TRUE(DecodeSubmitResultResponse(w.bytes(), &out).ok());
  EXPECT_EQ(out.ticket, 77u);
  EXPECT_EQ(EncodeJobOutcome(out.outcome), EncodeJobOutcome(resp.outcome));
  EXPECT_EQ(out.outcome.views_fallback, 10);
  EXPECT_TRUE(out.outcome.lookup_degraded);
  EXPECT_DOUBLE_EQ(out.timings.latency_seconds, 0.125);
  EXPECT_DOUBLE_EQ(out.timings.queue_seconds, 0.25);
  EXPECT_DOUBLE_EQ(out.timings.estimated_cost, 1e9);
}

TEST(WireCodec, StatusResultRoundTripFailedJob) {
  StatusResultResponse resp;
  resp.ticket = 5;
  resp.state = WireJobState::kFailed;
  resp.error_code = static_cast<uint8_t>(StatusCode::kNotFound);
  resp.error_message = "stream missing";
  WireWriter w;
  EncodeStatusResultResponse(resp, &w);
  StatusResultResponse out;
  ASSERT_TRUE(DecodeStatusResultResponse(w.bytes(), &out).ok());
  EXPECT_EQ(out.state, WireJobState::kFailed);
  EXPECT_EQ(out.error_code, static_cast<uint8_t>(StatusCode::kNotFound));
  EXPECT_EQ(out.error_message, "stream missing");
}

TEST(WireCodec, SmallMessagesRoundTrip) {
  {
    StatusQueryRequest req{0xdeadbeefcafef00dULL};
    WireWriter w;
    EncodeStatusQueryRequest(req, &w);
    StatusQueryRequest out;
    ASSERT_TRUE(DecodeStatusQueryRequest(w.bytes(), &out).ok());
    EXPECT_EQ(out.ticket, req.ticket);
  }
  {
    AcceptedResponse resp{31337};
    WireWriter w;
    EncodeAcceptedResponse(resp, &w);
    AcceptedResponse out;
    ASSERT_TRUE(DecodeAcceptedResponse(w.bytes(), &out).ok());
    EXPECT_EQ(out.ticket, 31337u);
  }
  {
    ProfileResultResponse resp;
    resp.ticket = 2;
    resp.profile_json = "{\"name\":\"net.request\"}";
    WireWriter w;
    EncodeProfileResultResponse(resp, &w);
    ProfileResultResponse out;
    ASSERT_TRUE(DecodeProfileResultResponse(w.bytes(), &out).ok());
    EXPECT_EQ(out.profile_json, resp.profile_json);
  }
  {
    ServerStatsResponse resp;
    resp.accepted = 1;
    resp.completed = 2;
    resp.failed = 3;
    resp.shed_queue_full = 4;
    resp.shed_conn_cap = 5;
    resp.shed_draining = 6;
    resp.shed_injected = 7;
    resp.queue_depth = 8;
    resp.inflight = 9;
    resp.connections = 10;
    WireWriter w;
    EncodeServerStatsResponse(resp, &w);
    ServerStatsResponse out;
    ASSERT_TRUE(DecodeServerStatsResponse(w.bytes(), &out).ok());
    EXPECT_EQ(out.shed_injected, 7u);
    EXPECT_EQ(out.connections, 10u);
  }
  {
    ErrorResponse resp{static_cast<uint8_t>(StatusCode::kParseError), "bad"};
    WireWriter w;
    EncodeErrorResponse(resp, &w);
    ErrorResponse out;
    ASSERT_TRUE(DecodeErrorResponse(w.bytes(), &out).ok());
    EXPECT_EQ(out.code, resp.code);
    EXPECT_EQ(out.message, "bad");
  }
  {
    RetryAfterResponse resp{ShedReason::kConnCap, 40};
    WireWriter w;
    EncodeRetryAfterResponse(resp, &w);
    RetryAfterResponse out;
    ASSERT_TRUE(DecodeRetryAfterResponse(w.bytes(), &out).ok());
    EXPECT_EQ(out.reason, ShedReason::kConnCap);
    EXPECT_EQ(out.retry_after_ms, 40u);
  }
}

// ---------------------------------------------------------------------------
// Frame header validation

TEST(WireFrame, HeaderRoundTrip) {
  std::string frame = EncodeFrame(MsgType::kSubmit, "abc");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 3);
  FrameHeader h;
  ASSERT_TRUE(DecodeFrameHeader(frame.data(), &h).ok());
  EXPECT_EQ(h.version, kProtocolVersion);
  EXPECT_EQ(h.type, static_cast<uint8_t>(MsgType::kSubmit));
  EXPECT_EQ(h.payload_len, 3u);
}

TEST(WireFrame, BadMagicIsAborted) {
  std::string frame = EncodeFrame(MsgType::kSubmit, "");
  frame[0] = 'X';
  FrameHeader h;
  EXPECT_EQ(DecodeFrameHeader(frame.data(), &h).code(), StatusCode::kAborted);
}

TEST(WireFrame, VersionMismatchIsUnimplemented) {
  std::string frame = EncodeFrame(MsgType::kSubmit, "");
  frame[2] = 9;
  FrameHeader h;
  EXPECT_EQ(DecodeFrameHeader(frame.data(), &h).code(),
            StatusCode::kUnimplemented);
}

TEST(WireFrame, OversizedLengthPrefixIsOutOfRange) {
  // A hostile ~4 GiB length prefix must be rejected at the header — before
  // any payload buffer exists.
  std::string frame = EncodeFrame(MsgType::kSubmit, "");
  frame[4] = '\xff';
  frame[5] = '\xff';
  frame[6] = '\xff';
  frame[7] = '\xff';
  FrameHeader h;
  EXPECT_EQ(DecodeFrameHeader(frame.data(), &h).code(),
            StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// Malformed payloads (codec level)

TEST(WireMalformed, TruncatedPayloadsAreParseErrors) {
  WireWriter w;
  EncodeSubmitRequest(FullSubmitRequest(), &w);
  const std::string& full = w.bytes();
  // Every proper prefix must fail cleanly — no UB, no partial accept.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    SubmitRequest out;
    Status st = DecodeSubmitRequest(full.substr(0, cut), &out);
    EXPECT_FALSE(st.ok()) << "prefix of " << cut << " bytes decoded";
  }
}

TEST(WireMalformed, TrailingBytesRejected) {
  WireWriter w;
  EncodeAcceptedResponse({1}, &w);
  std::string payload = w.bytes() + "junk";
  AcceptedResponse out;
  EXPECT_EQ(DecodeAcceptedResponse(payload, &out).code(),
            StatusCode::kParseError);
}

TEST(WireMalformed, HostileStringLengthRejectedBeforeAllocation) {
  // script length field claims 4 GiB inside a tiny buffer: the decoder must
  // reject on the declared length (kOutOfRange), not try Need()/assign().
  WireWriter w;
  w.U32(0xffffffffu);
  SubmitRequest out;
  EXPECT_EQ(DecodeSubmitRequest(w.bytes(), &out).code(),
            StatusCode::kOutOfRange);
}

TEST(WireMalformed, TooManyListItemsRejected) {
  WireWriter w;
  w.Str("script");
  w.U32(kMaxListItems + 1);  // param count
  SubmitRequest out;
  EXPECT_EQ(DecodeSubmitRequest(w.bytes(), &out).code(),
            StatusCode::kOutOfRange);
}

TEST(WireMalformed, BadEnumValuesRejected) {
  {
    WireWriter w;
    w.Str("script");
    w.U32(1);
    w.Str("p");
    w.U8(99);  // unknown WireParamKind
    SubmitRequest out;
    EXPECT_EQ(DecodeSubmitRequest(w.bytes(), &out).code(),
              StatusCode::kParseError);
  }
  {
    WireWriter w;
    w.U8(250);  // status code out of range
    w.Str("m");
    ErrorResponse out;
    EXPECT_EQ(DecodeErrorResponse(w.bytes(), &out).code(),
              StatusCode::kParseError);
  }
  {
    WireWriter w;
    w.U8(9);  // shed reason out of range
    w.U32(10);
    RetryAfterResponse out;
    EXPECT_EQ(DecodeRetryAfterResponse(w.bytes(), &out).code(),
              StatusCode::kParseError);
  }
  {
    WireWriter w;
    w.U8(7);  // bool must be 0/1
    std::string buf = w.bytes() + std::string(200, '\0');
    WireReader r(buf);  // reader borrows: the buffer must outlive it
    bool b = false;
    EXPECT_EQ(r.Bool(&b).code(), StatusCode::kParseError);
  }
}

// ---------------------------------------------------------------------------
// Session layer over real sockets

TEST(NetSession, GarbageMagicClosesSilently) {
  ServerFixture fx = StartServerFixture();
  auto sock = Socket::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->SendAll("XYZZY!!!").ok());
  std::string byte;
  // The server closes without a reply: not our protocol, nothing to say.
  EXPECT_FALSE(sock->RecvExactly(1, &byte).ok());
  // And the server itself is still alive for well-behaved clients.
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->ServerStats().ok());
}

TEST(NetSession, VersionMismatchGetsTypedErrorThenClose) {
  ServerFixture fx = StartServerFixture();
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  std::string frame = EncodeFrame(MsgType::kServerStats, "");
  frame[2] = 2;  // future protocol version
  ASSERT_TRUE(client->socket()->SendAll(frame).ok());
  FrameHeader h;
  std::string payload;
  ASSERT_TRUE(RecvFrame(client->socket(), &h, &payload).ok());
  ASSERT_EQ(h.type, static_cast<uint8_t>(MsgType::kError));
  ErrorResponse err;
  ASSERT_TRUE(DecodeErrorResponse(payload, &err).ok());
  EXPECT_EQ(err.code, static_cast<uint8_t>(StatusCode::kUnimplemented));
  // After the typed reply the connection closes.
  std::string byte;
  EXPECT_FALSE(client->socket()->RecvExactly(1, &byte).ok());
}

TEST(NetSession, OversizedPrefixGetsTypedErrorThenClose) {
  ServerFixture fx = StartServerFixture();
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  std::string frame = EncodeFrame(MsgType::kSubmit, "");
  frame[7] = '\x7f';  // payload_len ~2 GiB; no payload follows
  ASSERT_TRUE(client->socket()->SendAll(frame).ok());
  FrameHeader h;
  std::string payload;
  // The reply arrives even though no payload was ever sent: the server
  // rejected on the header alone, without allocating or reading 2 GiB.
  ASSERT_TRUE(RecvFrame(client->socket(), &h, &payload).ok());
  ASSERT_EQ(h.type, static_cast<uint8_t>(MsgType::kError));
  ErrorResponse err;
  ASSERT_TRUE(DecodeErrorResponse(payload, &err).ok());
  EXPECT_EQ(err.code, static_cast<uint8_t>(StatusCode::kOutOfRange));
  std::string byte;
  EXPECT_FALSE(client->socket()->RecvExactly(1, &byte).ok());
}

TEST(NetSession, TruncatedFrameClosesWithoutCrash) {
  ServerFixture fx = StartServerFixture();
  {
    auto sock = Socket::Connect("127.0.0.1", fx.port);
    ASSERT_TRUE(sock.ok());
    std::string frame = EncodeFrame(MsgType::kSubmit, std::string(100, 'a'));
    // Send the header plus 10 of the promised 100 payload bytes, then
    // close: the server sees a truncated frame mid-read.
    ASSERT_TRUE(sock->SendAll(frame.substr(0, kFrameHeaderBytes + 10)).ok());
  }
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->ServerStats().ok());
}

TEST(NetSession, UnknownRequestTagKeepsConnection) {
  ServerFixture fx = StartServerFixture();
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  auto resp = client->Roundtrip(static_cast<MsgType>(42), "");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->type, MsgType::kError);
  ErrorResponse err;
  ASSERT_TRUE(DecodeErrorResponse(resp->payload, &err).ok());
  EXPECT_EQ(err.code, static_cast<uint8_t>(StatusCode::kInvalidArgument));
  // Framing was intact, so the same connection keeps working.
  EXPECT_TRUE(client->ServerStats().ok());
}

TEST(NetSession, PartialReadsReassembled) {
  ServerFixture fx = StartServerFixture();
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  WireWriter w;
  EncodeSubmitRequest(NetSubmit("tmpl-frag", "frag", "2024-01-01", 1), &w);
  std::string frame = EncodeFrame(MsgType::kSubmit, w.bytes());
  // Dribble the frame one byte per send(): the server's exact-read loop
  // must reassemble it regardless of how TCP segments the stream.
  for (size_t i = 0; i < frame.size(); ++i) {
    ASSERT_TRUE(client->socket()->SendAll(frame.substr(i, 1)).ok());
  }
  FrameHeader h;
  std::string payload;
  ASSERT_TRUE(RecvFrame(client->socket(), &h, &payload).ok());
  ASSERT_EQ(h.type, static_cast<uint8_t>(MsgType::kSubmitResult));
  SubmitResultResponse result;
  ASSERT_TRUE(DecodeSubmitResultResponse(payload, &result).ok());
  EXPECT_GT(result.outcome.job_id, 0u);
  EXPECT_GT(result.outcome.output_rows, 0);
}

TEST(NetSession, MalformedSubmitPayloadGetsTypedError) {
  ServerFixture fx = StartServerFixture();
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  auto resp = client->Roundtrip(MsgType::kSubmit, "\x01\x02\x03");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->type, MsgType::kError);
  EXPECT_TRUE(client->ServerStats().ok());
}

TEST(NetSession, ServerStatsRejectsNonEmptyPayload) {
  ServerFixture fx = StartServerFixture();
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  auto resp = client->Roundtrip(MsgType::kServerStats, "x");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->type, MsgType::kError);
  ErrorResponse err;
  ASSERT_TRUE(DecodeErrorResponse(resp->payload, &err).ok());
  EXPECT_EQ(err.code, static_cast<uint8_t>(StatusCode::kParseError));
  EXPECT_TRUE(client->ServerStats().ok());
}

TEST(NetSession, UnknownTicketIsNotFound) {
  ServerFixture fx = StartServerFixture();
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  auto status = client->QueryStatus(999999);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kNotFound);
  auto profile = client->FetchProfile(999999);
  ASSERT_FALSE(profile.ok());
  EXPECT_EQ(profile.status().code(), StatusCode::kNotFound);
}

TEST(NetSession, BadScriptGetsParserErrorNotCrash) {
  ServerFixture fx = StartServerFixture();
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  SubmitRequest req = NetSubmit("tmpl-bad", "bad", "2024-01-01", 1);
  req.script = "THIS IS NOT SCOPESCRIPT ((((";
  auto reply = client->Submit(req);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->kind, Client::SubmitReply::Kind::kError);
  EXPECT_TRUE(client->ServerStats().ok());
}

}  // namespace
}  // namespace net
}  // namespace cloudviews
