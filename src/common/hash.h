#ifndef CLOUDVIEWS_COMMON_HASH_H_
#define CLOUDVIEWS_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace cloudviews {

/// \brief A 128-bit stable hash value used for plan signatures.
///
/// Signatures identify computation subgraphs across process restarts and
/// across machines, so the hash must be deterministic and platform
/// independent (no std::hash). 128 bits keeps the collision probability
/// negligible at the scale of millions of subgraphs per day (Sec 3).
struct Hash128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Hash128& o) const { return hi == o.hi && lo == o.lo; }
  bool operator!=(const Hash128& o) const { return !(*this == o); }
  bool operator<(const Hash128& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }
  bool IsZero() const { return hi == 0 && lo == 0; }

  /// Hex rendering, e.g. "0123456789abcdef0123456789abcdef".
  std::string ToHex() const;

  /// Parses the output of ToHex(); returns false on malformed input.
  static bool FromHex(std::string_view hex, Hash128* out);
};

/// FNV-1a 64-bit hash of a byte range, seedable for independent streams.
uint64_t Fnv1a64(const void* data, size_t len,
                 uint64_t seed = 0xcbf29ce484222325ULL);

/// Mixes a 64-bit value (splitmix64 finalizer); good avalanche behaviour.
uint64_t Mix64(uint64_t x);

/// \brief Incremental hasher producing a Hash128.
///
/// Feed scalar values and strings in a canonical order; the result is
/// independent of platform endianness for the scalar overloads used here
/// (values are serialized to fixed-width little-endian form).
class HashBuilder {
 public:
  HashBuilder() = default;
  explicit HashBuilder(uint64_t seed)
      : a_(0xcbf29ce484222325ULL ^ Mix64(seed)),
        b_(0x9e3779b97f4a7c15ULL + seed) {}

  HashBuilder& Add(uint64_t v);
  HashBuilder& Add(int64_t v) { return Add(static_cast<uint64_t>(v)); }
  HashBuilder& Add(int v) { return Add(static_cast<uint64_t>(v)); }
  HashBuilder& Add(bool v) { return Add(static_cast<uint64_t>(v ? 1 : 0)); }
  HashBuilder& Add(double v);
  HashBuilder& Add(std::string_view s);
  HashBuilder& Add(const Hash128& h) { return Add(h.hi).Add(h.lo); }

  Hash128 Finish() const;

 private:
  uint64_t a_ = 0xcbf29ce484222325ULL;
  uint64_t b_ = 0x9e3779b97f4a7c15ULL;
  uint64_t count_ = 0;
};

/// std::unordered_map support for Hash128 keys.
struct Hash128Hasher {
  size_t operator()(const Hash128& h) const {
    return static_cast<size_t>(h.hi ^ (h.lo * 0x9e3779b97f4a7c15ULL));
  }
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_COMMON_HASH_H_
