file(REMOVE_RECURSE
  "CMakeFiles/tpcds_demo.dir/tpcds_demo.cpp.o"
  "CMakeFiles/tpcds_demo.dir/tpcds_demo.cpp.o.d"
  "tpcds_demo"
  "tpcds_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
