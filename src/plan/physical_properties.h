#ifndef CLOUDVIEWS_PLAN_PHYSICAL_PROPERTIES_H_
#define CLOUDVIEWS_PLAN_PHYSICAL_PROPERTIES_H_

#include <string>
#include <vector>

#include "common/hash.h"

namespace cloudviews {

/// How rows are distributed across partitions at an operator's output.
enum class PartitionScheme : int {
  kAny = 0,        // unspecified / inherited
  kSingleton = 1,  // all rows in one partition
  kHash = 2,       // hash-partitioned on columns
  kRange = 3,      // range-partitioned on columns
  kRoundRobin = 4,
};

const char* PartitionSchemeToString(PartitionScheme s);

/// \brief Output partitioning of an operator.
struct Partitioning {
  PartitionScheme scheme = PartitionScheme::kAny;
  std::vector<std::string> columns;
  int partition_count = 0;  // 0 = unspecified

  static Partitioning Hash(std::vector<std::string> cols, int count) {
    return {PartitionScheme::kHash, std::move(cols), count};
  }
  static Partitioning Singleton() {
    return {PartitionScheme::kSingleton, {}, 1};
  }

  bool IsSpecified() const { return scheme != PartitionScheme::kAny; }

  /// True if data with this partitioning also satisfies `required`
  /// (e.g. hash(a) satisfies a requirement of hash(a) with any count when
  /// the required count is unspecified).
  bool Satisfies(const Partitioning& required) const;

  bool operator==(const Partitioning& o) const;
  void HashInto(HashBuilder* hb) const;
  std::string ToString() const;
};

/// One sort key: column name + direction.
struct SortKey {
  std::string column;
  bool ascending = true;

  bool operator==(const SortKey& o) const {
    return column == o.column && ascending == o.ascending;
  }
};

/// \brief Output sort order of an operator (empty = unsorted).
struct SortOrder {
  std::vector<SortKey> keys;

  bool IsSorted() const { return !keys.empty(); }

  /// True if this order is a prefix-compatible refinement of `required`.
  bool Satisfies(const SortOrder& required) const;

  bool operator==(const SortOrder& o) const { return keys == o.keys; }
  void HashInto(HashBuilder* hb) const;
  std::string ToString() const;
};

/// \brief Partitioning + sort order together; this is what the analyzer
/// mines for view physical design (Sec 5.3).
struct PhysicalProperties {
  Partitioning partitioning;
  SortOrder sort_order;

  bool IsSpecified() const {
    return partitioning.IsSpecified() || sort_order.IsSorted();
  }
  bool Satisfies(const PhysicalProperties& required) const {
    return partitioning.Satisfies(required.partitioning) &&
           sort_order.Satisfies(required.sort_order);
  }
  bool operator==(const PhysicalProperties& o) const {
    return partitioning == o.partitioning && sort_order == o.sort_order;
  }
  void HashInto(HashBuilder* hb) const {
    partitioning.HashInto(hb);
    sort_order.HashInto(hb);
  }
  std::string ToString() const;

  /// Stable key for grouping identical designs (analyzer "most popular
  /// set" policy).
  Hash128 Fingerprint() const {
    HashBuilder hb;
    HashInto(&hb);
    return hb.Finish();
  }
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_PLAN_PHYSICAL_PROPERTIES_H_
