#ifndef CLOUDVIEWS_TESTS_NET_TEST_UTIL_H_
#define CLOUDVIEWS_TESTS_NET_TEST_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/clock.h"
#include "core/cloudviews.h"
#include "net/server.h"
#include "net/wire.h"
#include "tests/test_util.h"

namespace cloudviews {
namespace testing_util {

/// The recurring script every net test submits; shares its cooking step
/// with SharedAggPlan-style jobs so day-2 submissions exercise reuse.
inline const char* NetScript() {
  return R"(
clicks = EXTRACT user:int, page:string, latency:int, when:date
         FROM "clicks_{date}";
slow   = SELECT page, COUNT(*) AS n, SUM(latency) AS total_latency
         FROM clicks WHERE latency > 50 GROUP BY page;
OUTPUT slow TO "slow_pages_{tag}_{date}";
)";
}

/// A wire submit request for NetScript() on one date. `tag` keeps output
/// stream names distinct per template so twin jobs do not collide.
inline net::SubmitRequest NetSubmit(const std::string& template_id,
                                    const std::string& tag,
                                    const std::string& date,
                                    int recurring_instance) {
  net::SubmitRequest req;
  req.script = NetScript();
  req.params.push_back(
      {"date", net::WireParamKind::kDate, date, 0});
  req.params.push_back(
      {"tag", net::WireParamKind::kString, tag, 0});
  req.template_id = template_id;
  req.vc = "vc-" + template_id;
  req.user = template_id;
  req.recurring_instance = recurring_instance;
  return req;
}

/// One CloudViews instance with a day of click data, fronted by a server.
struct ServerFixture {
  std::unique_ptr<CloudViews> cv;
  std::unique_ptr<net::JobServiceServer> server;
  uint16_t port = 0;

  ServerFixture() = default;
  ServerFixture(ServerFixture&&) = default;
  ServerFixture& operator=(ServerFixture&&) = default;
  ~ServerFixture() {
    if (server != nullptr) server->Stop();
  }
};

/// Builds the fixture; `mutate` (optional) tweaks the config before
/// construction (queue bounds, fault injector, worker counts).
inline ServerFixture StartServerFixture(
    const std::function<void(CloudViewsConfig*)>& mutate = nullptr,
    const std::vector<std::string>& dates = {"2024-01-01", "2024-01-02"}) {
  ServerFixture fx;
  CloudViewsConfig config;
  // Single submission worker by default: deterministic job-id order, which
  // the byte-identity comparisons rely on.
  config.net.submission_workers = 1;
  if (mutate != nullptr) mutate(&config);
  fx.cv = std::make_unique<CloudViews>(config);
  for (size_t i = 0; i < dates.size(); ++i) {
    WriteClickStream(fx.cv->storage(), "clicks_" + dates[i], 512,
                     /*seed=*/77 + i, dates[i]);
  }
  fx.server =
      std::make_unique<net::JobServiceServer>(fx.cv.get(), fx.cv->config().net);
  auto port = fx.server->Start();
  if (!port.ok()) std::abort();
  fx.port = *port;
  return fx;
}

/// Bounded busy-wait (no wall-clock sleeping: the banned-sleep rule) until
/// `pred` is true; returns false on timeout.
inline bool WaitUntil(const std::function<bool()>& pred,
                      double timeout_seconds = 30.0) {
  double deadline = MonotonicNowSeconds() + timeout_seconds;
  while (MonotonicNowSeconds() < deadline) {
    if (pred()) return true;
    std::this_thread::yield();
  }
  return pred();
}

}  // namespace testing_util
}  // namespace cloudviews

#endif  // CLOUDVIEWS_TESTS_NET_TEST_UTIL_H_
