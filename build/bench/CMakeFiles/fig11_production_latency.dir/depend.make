# Empty dependencies file for fig11_production_latency.
# This may be replaced when dependencies are built.
