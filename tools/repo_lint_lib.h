#ifndef CLOUDVIEWS_TOOLS_REPO_LINT_LIB_H_
#define CLOUDVIEWS_TOOLS_REPO_LINT_LIB_H_

#include <string>
#include <vector>

namespace cloudviews {
namespace lint {

/// One lint finding: file, 1-based line (0 for whole-file rules), the rule
/// slug, and a human-readable message.
struct Violation {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Rules enforced over src/ + tests/ (see DESIGN.md "Correctness tooling"):
///  banned-random      std::rand / srand / random_device / time(nullptr)
///                     outside common/random (use cloudviews::Rng)
///  banned-sync        std::mutex / condition_variable / lock_guard /
///                     unique_lock / scoped_lock outside common/mutex.h
///                     (use the annotated Mutex / MutexLock / CondVar)
///  banned-sleep       sleep_for / sleep_until / usleep / nanosleep
///                     outside fault/backoff (retry loops must go through
///                     fault::RetryWithBackoff and its injectable Sleeper,
///                     never sleep directly)
///  naked-new          `new` outside a smart-pointer factory
///                     (use std::make_unique / std::make_shared)
///  mutex-guarded      a header declaring a Mutex member must annotate the
///                     state it protects with GUARDED_BY / PT_GUARDED_BY
///  metadata-map-stripe a GUARDED_BY'd std::map / std::unordered_map
///                     member in a src/metadata/ header must carry a
///                     nearby "shard-stripe" justification comment — the
///                     metadata hot path is sharded (Sec 7.3) and must not
///                     regrow a service-wide map behind a single mutex
///  compensation-comment a PlanNode construction (make_shared<...Node>) in
///                     src/optimizer/view_matcher.* or view_rewriter.* must
///                     carry a nearby "// compensation: <why>" comment —
///                     every operator added around a reused view changes
///                     result bytes unless justified, so the byte-identity
///                     argument must be written down at the construction
///  assert-side-effect assert() whose argument mutates state (vanishes
///                     under NDEBUG)
///  header-guard       include guards must be CLOUDVIEWS_<PATH>_H_
///  nolint-reason      NOLINT must carry a category and reason:
///                     NOLINT(rule): why
///
/// A line carrying a reasoned NOLINT(...) marker is exempt from the other
/// rules. Comments and string literals are stripped before matching.

/// Lints one file. `rel_path` is the repo-relative path ("src/...",
/// "tests/...") used for per-path rule exemptions and the expected header
/// guard; `display_path` is what violations report.
std::vector<Violation> LintFile(const std::string& display_path,
                                const std::string& rel_path,
                                const std::string& content);

/// Recursively lints every .h/.cc/.cpp under each root directory. Paths
/// inside the roots are made repo-relative by prefixing the root's
/// basename (passing "/repo/src" yields rel paths "src/...").
/// Unreadable roots are reported as violations with rule "io-error".
std::vector<Violation> LintTree(const std::vector<std::string>& roots);

/// Removes //- and /*-comments and the contents of string/char literals
/// from one line, so lexical rules do not fire on prose. `in_block_comment`
/// carries /* ... */ state across lines.
std::string SanitizeLine(const std::string& line, bool* in_block_comment);

}  // namespace lint
}  // namespace cloudviews

#endif  // CLOUDVIEWS_TOOLS_REPO_LINT_LIB_H_
