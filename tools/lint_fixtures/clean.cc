// Fixture: a source file every rule is happy with, including a
// reasoned-NOLINT suppression and strings naming banned constructs.
#include <cassert>
#include <memory>
#include <string>

namespace cloudviews_fixture {

struct Widget {
  int size = 0;
};

inline std::unique_ptr<Widget> MakeWidget(int size) {
  assert(size >= 0);
  auto w = std::make_unique<Widget>();
  w->size = size;
  return w;
}

inline std::string Describe() {
  return "docs may say std::mutex or new Widget() inside strings";
}

inline Widget* LeakedRegistry() {
  static Widget* w = new Widget();  // NOLINT(naked-new): leaked singleton
  return w;
}

}  // namespace cloudviews_fixture
