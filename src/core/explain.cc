#include "core/explain.h"

#include "common/string_util.h"
#include "storage/storage_manager.h"

namespace cloudviews {

std::string ExplainJob(const JobResult& result) {
  std::string out;
  out += StrFormat("job %llu\n",
                   static_cast<unsigned long long>(result.job_id));
  out += StrFormat(
      "  compile %.3fms (metadata lookup %.1fms), estimated cost %.1f\n",
      result.compile_seconds * 1000, result.metadata_lookup_seconds * 1000,
      result.estimated_cost);
  out += StrFormat(
      "  run: latency %.3fms, cpu %.3fms, output %.0f rows / %s\n",
      result.run_stats.latency_seconds * 1000,
      result.run_stats.cpu_seconds * 1000, result.run_stats.output_rows,
      HumanBytes(result.run_stats.output_bytes).c_str());
  out += StrFormat(
      "  cloudviews: %d view(s) reused, %d materialized, %d reuse "
      "candidate(s) rejected on cost, %d build lock(s) denied\n",
      result.views_reused, result.views_materialized,
      result.reuse_rejected_by_cost, result.materialize_lock_denied);

  if (result.executed_plan == nullptr) return out;
  std::vector<PlanNode*> nodes;
  CollectNodes(result.executed_plan, &nodes);
  for (PlanNode* n : nodes) {
    if (n->kind() == OpKind::kViewRead) {
      auto* view = static_cast<ViewReadNode*>(n);
      Hash128 norm, precise;
      uint64_t producer = 0;
      std::string provenance = "unknown producer";
      if (ParseViewPath(view->view_path(), &norm, &precise, &producer)) {
        provenance = StrFormat(
            "produced by job %llu",
            static_cast<unsigned long long>(producer));
      }
      out += StrFormat("  reused view %s\n    %s; %.0f rows / %s; design "
                       "%s\n",
                       view->view_path().c_str(), provenance.c_str(),
                       view->actual_rows(),
                       HumanBytes(view->actual_bytes()).c_str(),
                       view->props().ToString().c_str());
    }
    if (n->kind() == OpKind::kSpool) {
      auto* spool = static_cast<SpoolNode*>(n);
      out += StrFormat(
          "  materialized view %s\n    design %s; lifetime %llds\n",
          spool->view_path().c_str(), spool->design().ToString().c_str(),
          static_cast<long long>(spool->lifetime_seconds()));
    }
  }
  out += "  executed plan:\n";
  for (const auto& line : Split(result.executed_plan->TreeString(), '\n')) {
    if (!line.empty()) out += "    " + line + "\n";
  }
  return out;
}

std::string ExplainViewSelection(const AnalysisResult& analysis,
                                 size_t limit) {
  std::string out;
  out += StrFormat(
      "analysis over %zu job(s): %zu subgraph template(s) mined, %zu "
      "selected (%.1fms)\n",
      analysis.jobs_analyzed, analysis.subgraphs_mined,
      analysis.selected.size(), analysis.analysis_seconds * 1000);
  size_t n = std::min(limit, analysis.selected.size());
  for (size_t i = 0; i < n; ++i) {
    const SubgraphAggregate& agg = analysis.selected[i];
    out += StrFormat(
        "  #%zu %s (%s-rooted, %zu ops)\n", i + 1,
        agg.normalized.ToHex().substr(0, 16).c_str(),
        OpKindToString(agg.root_kind), agg.subtree_size);
    out += StrFormat(
        "     selected because: %lld occurrence(s) across %zu job(s) / %zu "
        "user(s), avg runtime %.3fms -> utility %.4fs\n",
        static_cast<long long>(agg.frequency), agg.jobs.size(),
        agg.users.size(), agg.AvgLatency() * 1000, agg.TotalUtility());
    out += StrFormat(
        "     costs: %s storage per instance; view/query cost ratio %.3f\n",
        HumanBytes(agg.AvgBytes()).c_str(), agg.ViewToQueryCostRatio());
    int popular = 0, total_designs = 0;
    for (const auto& [fp, entry] : agg.designs) {
      total_designs += entry.first;
      popular = std::max(popular, entry.first);
    }
    out += StrFormat(
        "     design: %s (seen in %d of %d occurrences); lifetime %llds "
        "from input lineage over {%s}\n",
        agg.PopularDesign().ToString().c_str(), popular, total_designs,
        static_cast<long long>(agg.max_recurrence_period),
        Join(std::vector<std::string>(agg.input_templates.begin(),
                                      agg.input_templates.end()),
             ", ")
            .c_str());
  }
  return out;
}

}  // namespace cloudviews
