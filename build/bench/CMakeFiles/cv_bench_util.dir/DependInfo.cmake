
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_util.cc" "bench/CMakeFiles/cv_bench_util.dir/bench_util.cc.o" "gcc" "bench/CMakeFiles/cv_bench_util.dir/bench_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/cv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcds/CMakeFiles/cv_tpcds.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/cv_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cv_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/cv_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/cv_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/cv_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/cv_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/signature/CMakeFiles/cv_signature.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/cv_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/cv_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/cv_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
