// Ablation (Sec 5.2): view selection policies under a storage budget.
#include <cstdio>
#include <iostream>

#include "analyzer/view_selection.h"
#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace cloudviews {
namespace bench {
namespace {

int Run() {
  FigureHeader(
      "Ablation: view selection policies",
      "top-k heuristics vs storage-budget packing (Sec 5.2)",
      "the system allows plugging custom heuristics; packing under "
      "constraints is the companion BigSubs work");

  ClusterRun run = RunClusterInstance(BusinessUnitProfile(), "2018-01-01");
  OverlapAnalyzer overlap;
  overlap.AddJobs(run.cv->repository()->Jobs());

  auto evaluate = [&](SelectionConfig config, const char* name,
                      TablePrinter* table) {
    ViewSelector selector(config);
    auto selected = selector.Select(overlap.aggregates());
    double utility = 0, bytes = 0;
    for (const auto* agg : selected) {
      utility += agg->TotalUtility();
      bytes += agg->AvgBytes();
    }
    table->AddRow({name, StrFormat("%zu", selected.size()),
                   StrFormat("%.4f", utility),
                   HumanBytes(bytes)});
    return utility;
  };

  double budget = 64 * 1024;  // 64 KB of view storage at this scale

  TablePrinter table({"policy", "views", "captured utility (s)",
                      "storage used"});
  SelectionConfig base;
  base.min_frequency = 2;
  base.exclude_extract_roots = true;

  SelectionConfig topk = base;
  topk.policy = SelectionConfig::Policy::kTopKUtility;
  topk.top_k = 10;
  evaluate(topk, "top-10 by utility (no budget)", &table);

  SelectionConfig per_byte = base;
  per_byte.policy = SelectionConfig::Policy::kTopKUtilityPerByte;
  per_byte.top_k = 10;
  evaluate(per_byte, "top-10 by utility/byte", &table);

  SelectionConfig greedy = base;
  greedy.policy = SelectionConfig::Policy::kPackGreedy;
  greedy.storage_budget_bytes = budget;
  double g = evaluate(greedy, "greedy pack (64KB budget)", &table);

  SelectionConfig knapsack = base;
  knapsack.policy = SelectionConfig::Policy::kPackKnapsack;
  knapsack.storage_budget_bytes = budget;
  knapsack.knapsack_granularity_bytes = 1;
  double k = evaluate(knapsack, "knapsack pack (64KB budget)", &table);

  SelectionConfig capped = base;
  capped.policy = SelectionConfig::Policy::kTopKUtility;
  capped.top_k = 10;
  capped.max_per_job = 1;
  evaluate(capped, "top-10, at most one per job", &table);

  table.Print(std::cout);

  std::printf("\nsummary\n");
  PaperVsMeasured("knapsack vs greedy under budget", ">= greedy",
                  StrFormat("%+.1f%% utility",
                            g > 0 ? 100.0 * (k - g) / g : 0));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
