#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"
#include "core/cloudviews.h"
#include "exec/executor.h"
#include "tpcds/tpcds.h"

namespace cloudviews {
namespace {

using tpcds::kNumQueries;
using tpcds::TpcdsGenerator;
using tpcds::TpcdsOptions;

// ---------------------------------------------------------------------------
// ThreadPool primitives.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, NullPoolRunsInlineInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, NestedForkJoinDoesNotDeadlockOnSmallPool) {
  // More in-flight groups than workers: waiters must help, not block.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.Spawn([&pool, &total] {
      ParallelFor(&pool, 16, [&](size_t) { total.fetch_add(1); });
    });
  }
  outer.Wait();
  EXPECT_EQ(total.load(), 8 * 16);
}

// ---------------------------------------------------------------------------
// Determinism: the parallel engine must be byte-identical to the
// single-threaded one on every TPC-DS example query. Floating point makes
// this strict — any reordering of double sums would change low bits — so
// the comparison is on exact bit patterns, not EXPECT_DOUBLE_EQ.
// ---------------------------------------------------------------------------

void ExpectBitIdentical(const Batch& a, const Batch& b, int query) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << "q" << query;
  ASSERT_TRUE(a.schema() == b.schema()) << "q" << query;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    for (size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(ca.IsNull(r), cb.IsNull(r))
          << "q" << query << " col " << c << " row " << r;
    }
    switch (a.schema().field(c).type) {
      case DataType::kDouble: {
        const auto& da = ca.double_data();
        const auto& db = cb.double_data();
        // memcmp on an empty vector's data() is UB (null pointer).
        if (!da.empty()) {
          ASSERT_EQ(0, std::memcmp(da.data(), db.data(),
                                   da.size() * sizeof(double)))
              << "q" << query << " col " << c << " (double bits differ)";
        }
        break;
      }
      case DataType::kInt64:
      case DataType::kDate:
        ASSERT_EQ(ca.int64_data(), cb.int64_data())
            << "q" << query << " col " << c;
        break;
      case DataType::kBool:
        ASSERT_EQ(ca.bool_data(), cb.bool_data())
            << "q" << query << " col " << c;
        break;
      case DataType::kString:
        ASSERT_EQ(ca.string_data(), cb.string_data())
            << "q" << query << " col " << c;
        break;
    }
  }
}

TpcdsOptions SmallOptions() {
  TpcdsOptions options;
  options.store_sales_rows = 2000;
  options.web_sales_rows = 800;
  options.catalog_sales_rows = 1000;
  options.customers = 200;
  return options;
}

CloudViewsConfig ConfigWith(int workers, int morsel_rows) {
  CloudViewsConfig config;
  config.exec.worker_threads = workers;
  config.exec.morsel_rows = morsel_rows;
  return config;
}

TEST(ParallelExecTest, EveryTpcdsQueryIsByteIdenticalAcrossWorkerCounts) {
  CloudViews serial(ConfigWith(1, 256));
  CloudViews parallel(ConfigWith(4, 256));
  TpcdsGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.WriteTables(serial.storage()).ok());
  ASSERT_TRUE(gen.WriteTables(parallel.storage()).ok());

  for (int q = 1; q <= kNumQueries; ++q) {
    auto def = tpcds::MakeQueryJob(q);
    auto r1 = serial.Submit(def, /*enable_cloudviews=*/false);
    auto r4 = parallel.Submit(def, /*enable_cloudviews=*/false);
    ASSERT_TRUE(r1.ok()) << "q" << q << ": " << r1.status().ToString();
    ASSERT_TRUE(r4.ok()) << "q" << q << ": " << r4.status().ToString();

    std::string out = "tpcds_q" + std::to_string(q) + "_out";
    auto s1 = serial.storage()->OpenStream(out);
    auto s4 = parallel.storage()->OpenStream(out);
    ASSERT_TRUE(s1.ok() && s4.ok()) << "q" << q;
    ExpectBitIdentical(CombineBatches((*s1)->schema, (*s1)->batches),
                       CombineBatches((*s4)->schema, (*s4)->batches), q);

    // Per-operator attribution: cardinalities and sizes must be exact,
    // whatever the worker count.
    const auto& ops1 = r1->run_stats.operators;
    const auto& ops4 = r4->run_stats.operators;
    ASSERT_EQ(ops1.size(), ops4.size()) << "q" << q;
    for (const auto& [id, op1] : ops1) {
      auto it = ops4.find(id);
      ASSERT_NE(it, ops4.end()) << "q" << q << " node " << id;
      EXPECT_EQ(op1.rows, it->second.rows) << "q" << q << " node " << id;
      EXPECT_EQ(op1.bytes, it->second.bytes) << "q" << q << " node " << id;
    }
    EXPECT_EQ(r1->run_stats.output_rows, r4->run_stats.output_rows)
        << "q" << q;
  }
}

TEST(ParallelExecTest, MorselSizeDoesNotChangeResults) {
  // Odd, tiny, and larger-than-input morsels must all agree.
  CloudViews base(ConfigWith(1, 4096));
  TpcdsGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.WriteTables(base.storage()).ok());

  for (int morsel_rows : {7, 64, 100000}) {
    CloudViews other(ConfigWith(4, morsel_rows));
    ASSERT_TRUE(gen.WriteTables(other.storage()).ok());
    for (int q : {1, 17, 42, 73, 99}) {
      auto def = tpcds::MakeQueryJob(q);
      auto rb = base.Submit(def, /*enable_cloudviews=*/false);
      auto ro = other.Submit(def, /*enable_cloudviews=*/false);
      ASSERT_TRUE(rb.ok()) << "q" << q << ": " << rb.status().ToString();
      ASSERT_TRUE(ro.ok()) << "q" << q << ": " << ro.status().ToString();
      std::string out = "tpcds_q" + std::to_string(q) + "_out";
      auto sb = base.storage()->OpenStream(out);
      auto so = other.storage()->OpenStream(out);
      ASSERT_TRUE(sb.ok() && so.ok()) << "q" << q;
      ExpectBitIdentical(CombineBatches((*sb)->schema, (*sb)->batches),
                         CombineBatches((*so)->schema, (*so)->batches), q);
    }
  }
}

TEST(ParallelExecTest, CloudViewsReuseIsDeterministicUnderParallelism) {
  // With reuse on, spooled views and rewritten plans must also reproduce
  // the single-threaded results exactly. View *selection* ranks candidates
  // by observed wall-clock utility, which legitimately differs between the
  // two instances, so lift the top-k cutoff: every qualifying subgraph gets
  // selected and the reused-view set depends only on plan structure.
  CloudViewsConfig serial_config = ConfigWith(1, 128);
  CloudViewsConfig parallel_config = ConfigWith(4, 128);
  serial_config.analyzer.selection.top_k = 1000;
  parallel_config.analyzer.selection.top_k = 1000;
  CloudViews serial(serial_config);
  CloudViews parallel(parallel_config);
  TpcdsGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.WriteTables(serial.storage()).ok());
  ASSERT_TRUE(gen.WriteTables(parallel.storage()).ok());

  for (int q : {1, 2, 3, 4, 5}) {
    ASSERT_TRUE(serial.Submit(tpcds::MakeQueryJob(q)).ok());
    ASSERT_TRUE(parallel.Submit(tpcds::MakeQueryJob(q)).ok());
  }
  serial.RunAnalyzerAndLoad();
  parallel.RunAnalyzerAndLoad();
  for (int q : {1, 2, 3, 4, 5}) {
    auto rs = serial.Submit(tpcds::MakeQueryJob(q));
    auto rp = parallel.Submit(tpcds::MakeQueryJob(q));
    ASSERT_TRUE(rs.ok() && rp.ok()) << "q" << q;
    EXPECT_EQ(rs->views_reused, rp->views_reused) << "q" << q;
    std::string out = "tpcds_q" + std::to_string(q) + "_out";
    auto ss = serial.storage()->OpenStream(out);
    auto sp = parallel.storage()->OpenStream(out);
    ASSERT_TRUE(ss.ok() && sp.ok()) << "q" << q;
    ExpectBitIdentical(CombineBatches((*ss)->schema, (*ss)->batches),
                       CombineBatches((*sp)->schema, (*sp)->batches), q);
  }
}

}  // namespace
}  // namespace cloudviews
