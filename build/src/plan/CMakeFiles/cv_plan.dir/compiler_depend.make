# Empty compiler generated dependencies file for cv_plan.
# This may be replaced when dependencies are built.
