# Empty compiler generated dependencies file for fig01_cluster_overlap.
# This may be replaced when dependencies are built.
