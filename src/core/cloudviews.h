#ifndef CLOUDVIEWS_CORE_CLOUDVIEWS_H_
#define CLOUDVIEWS_CORE_CLOUDVIEWS_H_

#include <memory>

#include "analyzer/analyzer.h"
#include "common/mutex.h"
#include "fault/backoff.h"
#include "fault/fault_injector.h"
#include "metadata/metadata_service.h"
#include "net/net_config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/job_service.h"

namespace cloudviews {

struct CloudViewsConfig {
  OptimizerConfig optimizer;
  MetadataServiceConfig metadata;
  AnalyzerConfig analyzer;
  /// Execution options (worker threads, morsel size) for the job service's
  /// shared morsel-driven engine; the default runs single-threaded.
  ExecOptions exec;
  LogicalTime clock_start = 0;
  /// Wires the owned MetricsRegistry/Tracer through every component
  /// (storage, metadata, repository, job service, executor, thread pool).
  /// Off disables all instrumentation — the null-pointer fast paths.
  bool enable_observability = true;
  /// Wall-time source for metrics/spans AND for the metadata service's
  /// build-lock leases; null uses the real monotonic clock. Tests inject a
  /// FakeMonotonicClock for deterministic profiles and lease expiry.
  MonotonicClock* wall_clock = nullptr;
  /// Deterministic fault injector threaded through storage, metadata, and
  /// the executor (see src/fault/). Null (default) disables injection; the
  /// degradation machinery — retries, fallback-to-original-plan, lease
  /// reclamation — still protects against genuine failures.
  fault::FaultInjector* fault = nullptr;
  /// Backoff schedule for transient storage/metadata retries.
  fault::RetryPolicy retry;
  /// Network front door knobs (header-only; the server itself lives in
  /// src/net and is started separately via JobServiceServer).
  net::NetServerConfig net;
  /// Sleep seam between retry attempts; null sleeps for real. Tests inject
  /// a RecordingSleeper so fault runs never wait.
  fault::Sleeper* sleeper = nullptr;
};

/// \brief The end-to-end CLOUDVIEWS system (Fig 6): an analytics job
/// service with the analyzer + metadata service + runtime wired together.
///
/// Typical use:
/// \code
///   CloudViews cv;
///   ...write input streams via cv.storage()...
///   cv.Submit(job);                  // day 1: plain runs, history recorded
///   cv.RunAnalyzerAndLoad();         // mine overlaps, select views
///   cv.Submit(job2);                 // day 2: views materialize + reuse
/// \endcode
class CloudViews {
 public:
  explicit CloudViews(CloudViewsConfig config = {});

  SimulatedClock* clock() { return &clock_; }
  StorageManager* storage() { return storage_.get(); }
  MetadataService* metadata() { return metadata_.get(); }
  WorkloadRepository* repository() { return repository_.get(); }
  JobService* job_service() { return job_service_.get(); }
  /// System-wide instrument registry (export via obs::RenderPrometheus).
  obs::MetricsRegistry* metrics() { return &metrics_; }
  /// Job lifecycle traces; each Submit leaves one finished trace here (and
  /// on its JobResult).
  obs::Tracer* tracer() { return &tracer_; }
  const CloudViewsConfig& config() const { return config_; }

  /// Submits one job. CloudViews reuse/materialization is on by default;
  /// pass false to run exactly as before (the opt-in flag of Sec 4).
  Result<JobResult> Submit(const JobDefinition& def,
                           bool enable_cloudviews = true)
      EXCLUDES(stats_mu_);

  /// Full-options submit sharing the same analyzer-trigger accounting; the
  /// network front door uses this to pass its parent span through.
  Result<JobResult> Submit(const JobDefinition& def,
                           const JobServiceOptions& options)
      EXCLUDES(stats_mu_);

  /// Runs the analyzer over the whole repository (or a window) and loads
  /// the resulting annotations into the metadata service.
  AnalysisResult RunAnalyzerAndLoad() EXCLUDES(stats_mu_);
  AnalysisResult RunAnalyzerAndLoad(LogicalTime from, LogicalTime to)
      EXCLUDES(stats_mu_);

  /// Expires views: metadata entries first, then the backing files
  /// (Sec 5.4); also sweeps any other expired streams.
  size_t PurgeExpired();

  /// Offline materialization (Sec 6.2): builds every annotated view that
  /// `def`'s plan contains, as a standalone pre-job. Use with
  /// AnalyzerConfig::offline_mode so the online runtime only reuses.
  Result<int> BuildViewsOffline(const JobDefinition& def);

  /// Admin storage reclamation (Sec 5.4): drops minimum-utility registered
  /// views until at least `bytes_to_reclaim` of view storage is freed.
  /// Metadata is cleaned before the files are deleted. Returns the number
  /// of views dropped.
  size_t ReclaimViewStorage(double bytes_to_reclaim);

  /// Change detection heuristic of Sec 7.3: re-analysis is due when the
  /// fraction of recent jobs that materialized or reused views drops below
  /// `min_hit_rate` (the workload changed, signatures stopped matching).
  bool AnalysisLooksStale(double min_hit_rate = 0.05) const
      EXCLUDES(stats_mu_);

 private:
  CloudViewsConfig config_;
  SimulatedClock clock_;
  /// Declared before the components so instrumented destructors (e.g. the
  /// job service's thread pool draining its queue) still see live
  /// instruments.
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<MetadataService> metadata_;
  std::unique_ptr<WorkloadRepository> repository_;
  std::unique_ptr<JobService> job_service_;

  /// Guards the staleness counters fed by Submit and read by
  /// AnalysisLooksStale (concurrent submissions race on them otherwise).
  mutable Mutex stats_mu_;
  uint64_t jobs_since_analysis_ GUARDED_BY(stats_mu_) = 0;
  uint64_t view_hits_since_analysis_ GUARDED_BY(stats_mu_) = 0;
  bool analysis_loaded_ GUARDED_BY(stats_mu_) = false;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CORE_CLOUDVIEWS_H_
