// Fixture: seeded banned-random violations (unseeded randomness breaks
// experiment reproducibility).
#include <cstdlib>
#include <ctime>
#include <random>

int UnseededEntropy() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::random_device rd;
  return std::rand() + static_cast<int>(rd());
}
