file(REMOVE_RECURSE
  "CMakeFiles/admin_report.dir/admin_report.cpp.o"
  "CMakeFiles/admin_report.dir/admin_report.cpp.o.d"
  "admin_report"
  "admin_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
