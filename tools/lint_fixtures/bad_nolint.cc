// Fixture: seeded nolint-reason violation — a bare NOLINT with neither
// category nor justification.
inline int Answer() {
  return 42;  // NOLINT
}
