#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "tools/repo_lint_lib.h"

namespace cloudviews {
namespace lint {
namespace {

// CV_LINT_FIXTURE_DIR is injected by CMake and points at
// tools/lint_fixtures (files with seeded violations, one per rule, plus a
// clean pair proving the rules do not over-fire).
std::string FixturePath(const std::string& name) {
  return std::string(CV_LINT_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Violation> LintFixture(const std::string& name) {
  return LintFile(name, "tools/lint_fixtures/" + name, ReadFixture(name));
}

std::set<std::string> Rules(const std::vector<Violation>& violations) {
  std::set<std::string> rules;
  for (const auto& v : violations) rules.insert(v.rule);
  return rules;
}

TEST(RepoLintTest, BannedRandomFires) {
  auto violations = LintFixture("bad_random.cc");
  EXPECT_EQ(Rules(violations), std::set<std::string>{"banned-random"});
  // std::srand, time(nullptr), std::random_device, std::rand + rd() use.
  EXPECT_GE(violations.size(), 3u);
}

TEST(RepoLintTest, BannedRandomAllowedInsideCommonRandom) {
  auto violations = LintFile("random.cc", "src/common/random.cc",
                             ReadFixture("bad_random.cc"));
  EXPECT_TRUE(violations.empty());
}

TEST(RepoLintTest, BannedClockFires) {
  auto violations = LintFixture("bad_clock.cc");
  EXPECT_EQ(Rules(violations), std::set<std::string>{"banned-clock"});
  // steady_clock, system_clock, high_resolution_clock.
  EXPECT_GE(violations.size(), 3u);
}

TEST(RepoLintTest, BannedClockAllowedInClockHeaderAndObs) {
  EXPECT_TRUE(LintFile("clock.h", "src/common/clock.h",
                       "#ifndef CLOUDVIEWS_COMMON_CLOCK_H_\n"
                       "#define CLOUDVIEWS_COMMON_CLOCK_H_\n"
                       "auto t = std::chrono::steady_clock::now();\n"
                       "#endif\n")
                  .empty());
  EXPECT_TRUE(LintFile("metrics.cc", "src/obs/metrics.cc",
                       "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
}

TEST(RepoLintTest, BannedSyncFires) {
  auto violations = LintFixture("bad_sync.cc");
  EXPECT_EQ(Rules(violations), std::set<std::string>{"banned-sync"});
  EXPECT_GE(violations.size(), 2u);  // std::mutex and std::lock_guard
}

TEST(RepoLintTest, BannedSleepFires) {
  auto violations = LintFixture("bad_sleep.cc");
  EXPECT_EQ(Rules(violations), std::set<std::string>{"banned-sleep"});
  // sleep_for, sleep_until, usleep, nanosleep.
  EXPECT_GE(violations.size(), 4u);
}

TEST(RepoLintTest, BannedSleepAllowedInBackoffHelper) {
  // The backoff helper's real Sleeper is the one sanctioned sleep site.
  EXPECT_TRUE(LintFile("backoff.cc", "src/fault/backoff.cc",
                       "std::this_thread::sleep_for(d);\n")
                  .empty());
  // Prose mentioning sleep_for does not fire (comments are stripped).
  EXPECT_TRUE(LintFile("doc.cc", "src/exec/doc.cc",
                       "// never call sleep_for in a retry loop\n")
                  .empty());
}

TEST(RepoLintTest, RawSocketFires) {
  auto violations = LintFixture("bad_socket.cc");
  EXPECT_EQ(Rules(violations), std::set<std::string>{"raw-socket"});
  // socket, bind, listen, accept, send, recv, shutdown.
  EXPECT_EQ(violations.size(), 7u);
}

TEST(RepoLintTest, RawSocketAllowedInSocketWrapper) {
  // The Socket RAII wrapper is the one sanctioned raw-API call site.
  EXPECT_TRUE(LintFile("socket.cc", "src/net/socket.cc",
                       ReadFixture("bad_socket.cc"))
                  .empty());
  EXPECT_TRUE(LintFile("socket.h", "src/net/socket.h",
                       "#ifndef CLOUDVIEWS_NET_SOCKET_H_\n"
                       "#define CLOUDVIEWS_NET_SOCKET_H_\n"
                       "inline int Fd() { return ::socket(2, 1, 0); }\n"
                       "#endif\n")
                  .empty());
}

TEST(RepoLintTest, RawSocketSkipsMembersAndQualifiedNames) {
  EXPECT_TRUE(LintFile("f.cc", "src/runtime/f.cc",
                       "void F(Socket* s) {\n"
                       "  s->connect(1);\n"
                       "  auto b = std::bind(g, 2);\n"
                       "}\n")
                  .empty());
}

TEST(RepoLintTest, NakedNewFires) {
  auto violations = LintFixture("bad_new.cc");
  EXPECT_EQ(Rules(violations), std::set<std::string>{"naked-new"});
  EXPECT_EQ(violations.size(), 1u);
}

TEST(RepoLintTest, UnguardedMutexMemberFires) {
  auto violations = LintFixture("bad_unguarded.h");
  EXPECT_EQ(Rules(violations), std::set<std::string>{"mutex-guarded"});
  EXPECT_EQ(violations.size(), 1u);
}

TEST(RepoLintTest, MetadataGuardedMapWithoutStripeJustificationFires) {
  // The fixture lives in lint_fixtures/ but is linted as if it were a
  // src/metadata/ header, where the rule is scoped.
  auto violations =
      LintFile("bad_metadata_map.h", "src/metadata/bad_metadata_map.h",
               ReadFixture("bad_metadata_map.h"));
  EXPECT_EQ(Rules(violations),
            std::set<std::string>{"metadata-map-stripe"});
  // Only the unjustified views_ map; the shard-stripe-justified locks_
  // and the unguarded cache_ stay clean.
  ASSERT_EQ(violations.size(), 1u);
}

TEST(RepoLintTest, MetadataMapRuleSeesWrappedGuardedBy) {
  // GUARDED_BY on the continuation line of a wrapped declaration (the
  // shape metadata_service.h actually uses) is still caught.
  std::string content =
      "#ifndef CLOUDVIEWS_METADATA_M_H_\n"
      "#define CLOUDVIEWS_METADATA_M_H_\n"
      "class M {\n"
      "  mutable Mutex mu_;\n"
      "  std::unordered_map<Hash128, RegisteredView, Hash128Hasher> views_\n"
      "      GUARDED_BY(mu_);\n"
      "};\n"
      "#endif\n";
  auto violations = LintFile("m.h", "src/metadata/m.h", content);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "metadata-map-stripe");
  EXPECT_EQ(violations[0].line, 5);
}

TEST(RepoLintTest, MetadataMapRuleScopedToMetadataHeaders) {
  // The same guarded map outside src/metadata/ is the general
  // mutex-guarded concern, not this rule's.
  std::string body =
      "class C {\n"
      "  mutable Mutex mu_;\n"
      "  std::map<int, int> m_ GUARDED_BY(mu_);\n"
      "};\n";
  EXPECT_TRUE(LintFile("m.h", "src/runtime/m.h",
                       "#ifndef CLOUDVIEWS_RUNTIME_M_H_\n"
                       "#define CLOUDVIEWS_RUNTIME_M_H_\n" +
                           body + "#endif\n")
                  .empty());
  // Headers only: a .cc in src/metadata/ holds implementation detail, not
  // the service's state layout.
  EXPECT_TRUE(
      LintFile("m.cc", "src/metadata/metadata_service.cc", body).empty());
}

TEST(RepoLintTest, MetadataMapRuleHonorsReasonedNolint) {
  std::string content =
      "#ifndef CLOUDVIEWS_METADATA_M_H_\n"
      "#define CLOUDVIEWS_METADATA_M_H_\n"
      "class M {\n"
      "  mutable Mutex mu_;\n"
      "  std::map<int, int> m_ GUARDED_BY(mu_);"
      "  // NOLINT(metadata-map-stripe): migration in flight\n"
      "};\n"
      "#endif\n";
  EXPECT_TRUE(LintFile("m.h", "src/metadata/m.h", content).empty());
}

TEST(RepoLintTest, CompensationCommentFires) {
  // The fixture lives in lint_fixtures/ but is linted as if it were the
  // view matcher, where the rule is scoped.
  auto violations =
      LintFile("bad_compensation.cc", "src/optimizer/view_matcher.cc",
               ReadFixture("bad_compensation.cc"));
  EXPECT_EQ(Rules(violations),
            std::set<std::string>{"compensation-comment"});
  // Only the unjustified FilterNode; the justified ProjectNode and the
  // non-plan-node ViewFeatures allocation stay clean.
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].line, 8);
  EXPECT_NE(violations[0].message.find("FilterNode"), std::string::npos);
}

TEST(RepoLintTest, CompensationCommentScopedToMatcherAndRewriter) {
  // The same construction elsewhere in the optimizer is not this rule's
  // concern (only the compensation path must argue byte-identity).
  EXPECT_TRUE(LintFile("rules.cc", "src/optimizer/rules.cc",
                       "auto f = std::make_shared<FilterNode>(in, pred);\n")
                  .empty());
  EXPECT_TRUE(LintFile("rw.cc", "src/optimizer/view_rewriter.cc",
                       "auto f = std::make_shared<FilterNode>(in, pred);\n")
                  .size() == 1u);
}

TEST(RepoLintTest, CompensationCommentSeesWrappedConstruction) {
  // The template argument on the continuation line of a wrapped call (the
  // shape clang-format produces) is still caught.
  std::string content =
      "auto agg = std::make_shared<\n"
      "    AggregateNode>(input, keys, specs);\n";
  auto violations =
      LintFile("vm.cc", "src/optimizer/view_matcher.cc", content);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "compensation-comment");
  EXPECT_EQ(violations[0].line, 1);
}

TEST(RepoLintTest, CompensationCommentHonorsReasonedNolint) {
  std::string content =
      "auto f = std::make_shared<FilterNode>(in, pred);"
      "  // NOLINT(compensation-comment): fixture exemption\n";
  EXPECT_TRUE(
      LintFile("vm.cc", "src/optimizer/view_matcher.cc", content).empty());
}

TEST(RepoLintTest, AssertSideEffectFires) {
  auto violations = LintFixture("bad_assert.cc");
  EXPECT_EQ(Rules(violations),
            std::set<std::string>{"assert-side-effect"});
  EXPECT_EQ(violations.size(), 2u);  // --budget and written = budget
}

TEST(RepoLintTest, HeaderGuardFires) {
  auto violations = LintFixture("bad_guard.h");
  EXPECT_EQ(Rules(violations), std::set<std::string>{"header-guard"});
}

TEST(RepoLintTest, BareNolintFires) {
  auto violations = LintFixture("bad_nolint.cc");
  EXPECT_EQ(Rules(violations), std::set<std::string>{"nolint-reason"});
  EXPECT_EQ(violations.size(), 1u);
}

TEST(RepoLintTest, CleanFixturesPass) {
  EXPECT_TRUE(LintFixture("clean.cc").empty());
  EXPECT_TRUE(LintFixture("clean.h").empty());
}

TEST(RepoLintTest, SanitizerStripsCommentsAndStrings) {
  bool in_block = false;
  EXPECT_EQ(SanitizeLine("int x;  // new std::mutex", &in_block),
            "int x;  ");
  EXPECT_EQ(SanitizeLine("auto s = \"new Widget()\";", &in_block),
            "auto s = \"\";");
  EXPECT_EQ(SanitizeLine("a /* new */ b", &in_block), "a  b");
  EXPECT_FALSE(in_block);
  EXPECT_EQ(SanitizeLine("start /* spans", &in_block), "start ");
  EXPECT_TRUE(in_block);
  EXPECT_EQ(SanitizeLine("still hidden new", &in_block), "");
  EXPECT_EQ(SanitizeLine("done */ int y = 1;", &in_block), " int y = 1;");
  EXPECT_FALSE(in_block);
}

TEST(RepoLintTest, ReasonedNolintSuppressesOnlyItsLine) {
  std::string content =
      "int* a = new int;  // NOLINT(naked-new): fixture exemption\n"
      "int* b = new int;\n";
  auto violations = LintFile("f.cc", "src/f.cc", content);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].line, 2);
  EXPECT_EQ(violations[0].rule, "naked-new");
}

TEST(RepoLintTest, HeaderGuardStripsOnlySrcPrefix) {
  std::string src_header =
      "#ifndef CLOUDVIEWS_COMMON_FOO_H_\n"
      "#define CLOUDVIEWS_COMMON_FOO_H_\n"
      "#endif\n";
  EXPECT_TRUE(LintFile("foo.h", "src/common/foo.h", src_header).empty());
  std::string tests_header =
      "#ifndef CLOUDVIEWS_TESTS_FOO_H_\n"
      "#define CLOUDVIEWS_TESTS_FOO_H_\n"
      "#endif\n";
  EXPECT_TRUE(LintFile("foo.h", "tests/foo.h", tests_header).empty());
}

TEST(RepoLintTest, RawStringContentsCannotFireRules) {
  // The old line-oriented sanitizer lost raw-string state across lines,
  // so banned names inside a multi-line raw string leaked into matching.
  std::ifstream in(FixturePath("clean_rawstring.cc"));
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  auto violations = LintFile("clean_rawstring.cc",
                             "src/clean_rawstring.cc", ss.str());
  for (const auto& v : violations) {
    ADD_FAILURE() << v.path << ":" << v.line << " [" << v.rule << "] "
                  << v.message;
  }
}

TEST(RepoLintTest, DocsTableListsExactlyTheRegisteredRules) {
  std::ifstream in(std::string(CV_DOCS_DIR) + "/lint_rules.md");
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string docs = ss.str();

  // Rows of the "## repo_lint rules" table look like "| `rule-name` | ...".
  size_t begin = docs.find("## repo_lint rules");
  size_t end = docs.find("## invariant_analyzer rules");
  ASSERT_NE(begin, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  std::string section = docs.substr(begin, end - begin);

  size_t rows = 0;
  for (size_t pos = section.find("\n| `"); pos != std::string::npos;
       pos = section.find("\n| `", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, AllRules().size())
      << "docs/lint_rules.md repo_lint table row count must match "
         "AllRules()";
  for (const auto& rule : AllRules()) {
    EXPECT_NE(section.find("| `" + std::string(rule.name) + "` |"),
              std::string::npos)
        << "docs/lint_rules.md is missing rule " << rule.name;
    EXPECT_NE(section.find("`" + std::string(rule.fixture) + "`"),
              std::string::npos)
        << "docs/lint_rules.md is missing fixture " << rule.fixture;
  }
}

TEST(RepoLintTest, EveryRuleHasAFixtureOnDisk) {
  for (const auto& rule : AllRules()) {
    std::ifstream in(FixturePath(rule.fixture));
    EXPECT_TRUE(in.good()) << "rule " << rule.name
                           << " names a missing fixture " << rule.fixture;
  }
}

TEST(RepoLintTest, LintTreeSkipsFixturesAndFindsNothingSeeded) {
  // The fixture directory itself is excluded from tree scans, so pointing
  // LintTree at tools/ only reports real tool sources (which are clean).
  auto violations = LintTree({std::string(CV_LINT_TOOLS_DIR)});
  for (const auto& v : violations) {
    EXPECT_EQ(v.path.find("lint_fixtures"), std::string::npos) << v.path;
  }
}

}  // namespace
}  // namespace lint
}  // namespace cloudviews
