// Microbenchmarks: executor operator throughput.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "exec/executor.h"
#include "plan/plan_builder.h"

namespace cloudviews {
namespace {

struct Env {
  SimulatedClock clock;
  StorageManager storage{&clock};

  explicit Env(int64_t rows) {
    Schema schema({{"k", DataType::kInt64},
                   {"g", DataType::kString},
                   {"v", DataType::kDouble}});
    Rng rng(7);
    static const char* kGroups[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
    Batch b(schema);
    for (int64_t i = 0; i < rows; ++i) {
      (void)b.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(
                             static_cast<uint64_t>(rows)))),
                         Value::String(kGroups[rng.Uniform(8)]),
                         Value::Double(rng.NextDouble())});
    }
    (void)storage.WriteStream(
        MakeStreamData("data", "g1", schema, {b}, 0));
    (void)storage.WriteStream(
        MakeStreamData("data2", "g2", schema, {b}, 0));
  }

  PlanBuilder Scan(const char* name = "data") {
    Schema schema({{"k", DataType::kInt64},
                   {"g", DataType::kString},
                   {"v", DataType::kDouble}});
    return PlanBuilder::Extract(name, name, name[4] ? "g2" : "g1", schema);
  }

  double RunPlan(PlanNodePtr plan) {
    Status st = plan->Bind();
    if (!st.ok()) std::abort();
    AssignNodeIds(plan.get());
    Executor exec({.storage = &storage});
    auto r = exec.Execute(plan);
    if (!r.ok()) std::abort();
    return r->output_rows;
  }
};

void BM_Filter(benchmark::State& state) {
  Env env(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.RunPlan(env.Scan().Filter(Gt(Col("v"), Lit(0.5))).Build()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Filter)->Arg(1000)->Arg(10000);

void BM_HashAggregate(benchmark::State& state) {
  Env env(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.RunPlan(
        env.Scan()
            .Aggregate({"g"}, {{AggFunc::kCount, nullptr, "n"},
                               {AggFunc::kSum, Col("v"), "sv"}})
            .Build()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashAggregate)->Arg(1000)->Arg(10000);

void BM_Sort(benchmark::State& state) {
  Env env(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.RunPlan(env.Scan().Sort({{"v", false}}).Build()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sort)->Arg(1000)->Arg(10000);

void BM_HashJoin(benchmark::State& state) {
  Env env(state.range(0));
  for (auto _ : state) {
    auto right = env.Scan("data2")
                     .Project({{Col("k"), "k2"}, {Col("v"), "v2"}});
    benchmark::DoNotOptimize(env.RunPlan(
        env.Scan()
            .Join(std::move(right), JoinType::kInner, {{"k", "k2"}})
            .Aggregate({}, {{AggFunc::kCount, nullptr, "n"}})
            .Build()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000);

void BM_Exchange(benchmark::State& state) {
  Env env(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.RunPlan(
        env.Scan().Exchange(Partitioning::Hash({"k"}, 16)).Build()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Exchange)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace cloudviews
