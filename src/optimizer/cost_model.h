#ifndef CLOUDVIEWS_OPTIMIZER_COST_MODEL_H_
#define CLOUDVIEWS_OPTIMIZER_COST_MODEL_H_

#include "optimizer/view_interfaces.h"
#include "plan/plan_node.h"
#include "storage/storage_manager.h"

namespace cloudviews {

/// \brief Tunable weights of the abstract cost model.
///
/// Shuffles and sorts dominate, mirroring SCOPE where repartitioning and
/// sorting "are often the slowest steps in the job execution" (Sec 5.3).
struct CostModelConfig {
  double scan_weight = 1.0;        // per input row scanned
  double filter_weight = 0.2;      // per input row
  double project_weight = 0.3;     // per input row
  double hash_join_weight = 1.5;   // per input row (both sides)
  double merge_join_weight = 0.8;  // per input row (both sides)
  double hash_agg_weight = 1.5;    // per input row
  double stream_agg_weight = 0.6;  // per input row
  double sort_weight = 0.4;        // per row * log2(rows)
  double shuffle_weight = 4.0;     // per row through an exchange
  double process_weight = 2.0;     // per input row (opaque user code)
  double view_read_weight = 0.6;   // per view row scanned
  double spool_weight = 1.2;       // per row written to the view
  double output_weight = 0.8;      // per row written
  double top_weight = 0.05;        // per output row
  double bytes_weight = 2e-5;      // per byte moved at scans/shuffles

  /// Degree of parallelism assumed for partitioned stages: local work is
  /// divided by min(dop, partition count).
  int default_dop = 16;
};

/// \brief Cardinality / size / cost estimation over a plan tree.
///
/// Selectivity heuristics are intentionally crude (the paper's point is
/// that optimizer estimates "are often way off", Sec 5.1); when a
/// StatsProviderInterface is supplied, per-subgraph observed statistics
/// override the estimates — that is the CloudViews feedback loop.
class CostModel {
 public:
  explicit CostModel(CostModelConfig config = {}) : config_(config) {}

  const CostModelConfig& config() const { return config_; }

  /// Annotates every node's NodeEstimates (rows, bytes, cumulative cost),
  /// bottom-up. `feedback` and `storage` may be null; storage supplies
  /// compile-time input-stream statistics for Extract nodes.
  void Annotate(PlanNode* root, const StatsProviderInterface* feedback,
                const StorageManager* storage) const;

  /// Estimated selectivity of a predicate (heuristic).
  static double PredicateSelectivity(const Expr& predicate);

  /// Cost of scanning a materialized view with the given size, as used by
  /// the reuse decision.
  double ViewReadCost(double rows, double bytes) const;

  /// Cost of this operator alone given total child output rows/bytes
  /// (children estimates must already be annotated).
  double LocalCost(const PlanNode& node, double input_rows,
                   double input_bytes) const;

 private:
  CostModelConfig config_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_OPTIMIZER_COST_MODEL_H_
