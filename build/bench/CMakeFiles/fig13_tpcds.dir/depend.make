# Empty dependencies file for fig13_tpcds.
# This may be replaced when dependencies are built.
