#ifndef CLOUDVIEWS_COMMON_CLOCK_H_
#define CLOUDVIEWS_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace cloudviews {

/// Logical timestamp: seconds since an arbitrary epoch. Recurring jobs are
/// scheduled on this timeline (hourly = 3600, daily = 86400, ...).
using LogicalTime = int64_t;

constexpr LogicalTime kSecondsPerHour = 3600;
constexpr LogicalTime kSecondsPerDay = 86400;
constexpr LogicalTime kSecondsPerWeek = 7 * kSecondsPerDay;

/// \brief Virtual clock driving the simulated job service.
///
/// The job service is "always online" (Sec 1.3); experiments advance this
/// clock instead of sleeping, so recurring-instance boundaries, lock
/// expiries, and view expiries are deterministic and fast to simulate.
class SimulatedClock {
 public:
  explicit SimulatedClock(LogicalTime start = 0) : now_(start) {}

  LogicalTime Now() const { return now_.load(std::memory_order_relaxed); }

  void AdvanceSeconds(LogicalTime s) {
    now_.fetch_add(s, std::memory_order_relaxed);
  }
  void AdvanceTo(LogicalTime t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<LogicalTime> now_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_COMMON_CLOCK_H_
