#include "exec/batch_ops.h"

#include <algorithm>
#include <numeric>

namespace cloudviews {

Result<std::vector<int>> ResolveColumns(const Schema& schema,
                                        const std::vector<std::string>& names) {
  std::vector<int> idx;
  idx.reserve(names.size());
  for (const auto& n : names) {
    int i = schema.FieldIndex(n);
    if (i < 0) {
      return Status::Internal("executor: column '" + n + "' not found");
    }
    idx.push_back(i);
  }
  return idx;
}

Hash128 RowKey(const Batch& batch, size_t row, const std::vector<int>& cols) {
  HashBuilder hb;
  for (int c : cols) {
    batch.column(static_cast<size_t>(c)).GetValue(row).HashInto(&hb);
  }
  return hb.Finish();
}

int CompareRowsOnColumns(const Batch& a, size_t ra, const std::vector<int>& ca,
                         const Batch& b, size_t rb,
                         const std::vector<int>& cb) {
  for (size_t k = 0; k < ca.size(); ++k) {
    int cmp = a.column(static_cast<size_t>(ca[k]))
                  .GetValue(ra)
                  .Compare(b.column(static_cast<size_t>(cb[k])).GetValue(rb));
    if (cmp != 0) return cmp;
  }
  return 0;
}

ResolvedSortKeys ResolveSortKeys(const Schema& schema,
                                 const std::vector<SortKey>& keys) {
  ResolvedSortKeys resolved;
  for (const auto& k : keys) {
    int i = schema.FieldIndex(k.column);
    if (i < 0) continue;  // unknown keys are skipped (validated at bind)
    resolved.cols.push_back(i);
    resolved.ascending.push_back(k.ascending);
  }
  return resolved;
}

int CompareRowsSorted(const Batch& a, size_t ra, const Batch& b, size_t rb,
                      const ResolvedSortKeys& keys) {
  for (size_t k = 0; k < keys.cols.size(); ++k) {
    int cmp =
        a.column(static_cast<size_t>(keys.cols[k]))
            .GetValue(ra)
            .Compare(
                b.column(static_cast<size_t>(keys.cols[k])).GetValue(rb));
    if (cmp != 0) return keys.ascending[k] ? cmp : -cmp;
  }
  return 0;
}

std::vector<size_t> StableSortOrder(const Batch& data,
                                    const ResolvedSortKeys& keys) {
  std::vector<size_t> order(data.num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return CompareRowsSorted(data, a, data, b, keys) < 0;
  });
  return order;
}

Batch GatherRows(const Batch& src, const std::vector<size_t>& rows) {
  Batch out(src.schema());
  for (size_t r : rows) out.AppendRowFrom(src, r);
  return out;
}

}  // namespace cloudviews
