// Lint fixture: seeded compensation-comment violation. Linted as if it
// were src/optimizer/view_matcher.cc (the rule's scope).

PlanNodePtr BuildCompensation(const PlanNodePtr& view_read, ExprPtr residual,
                              std::vector<NamedExpr> fields) {
  // Violation: a plan node constructed in the compensation path with no
  // justification comment.
  auto filter = std::make_shared<FilterNode>(view_read, residual);

  // compensation: final projection narrows the view output back to the
  // replaced subtree's exact schema — no value or order change.
  auto project = std::make_shared<ProjectNode>(filter, fields);

  // Non-plan-node allocations are not this rule's concern.
  auto features = std::make_shared<ViewFeatures>();
  (void)features;
  return project;
}
