#include <gtest/gtest.h>

#include <thread>

#include "storage/storage_manager.h"

namespace cloudviews {
namespace {

Schema SimpleSchema() { return Schema({{"v", DataType::kInt64}}); }

Batch SimpleBatch(int n) {
  Batch b(SimpleSchema());
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(b.AppendRow({Value::Int64(i)}).ok());
  }
  return b;
}

TEST(ViewPathTest, EncodeParseRoundTrip) {
  Hash128 norm{0x1111, 0x2222}, precise{0x3333, 0x4444};
  std::string path = EncodeViewPath(norm, precise, 777);
  Hash128 n2, p2;
  uint64_t job = 0;
  ASSERT_TRUE(ParseViewPath(path, &n2, &p2, &job));
  EXPECT_EQ(n2, norm);
  EXPECT_EQ(p2, precise);
  EXPECT_EQ(job, 777u);
}

TEST(ViewPathTest, RejectsNonViewPaths) {
  Hash128 n, p;
  uint64_t job;
  EXPECT_FALSE(ParseViewPath("/data/foo.ss", &n, &p, &job));
  EXPECT_FALSE(ParseViewPath("/views/zz/bad", &n, &p, &job));
}

TEST(StorageTest, WriteOpenDelete) {
  SimulatedClock clock;
  StorageManager storage(&clock);
  ASSERT_TRUE(storage
                  .WriteStream(MakeStreamData("s1", "g1", SimpleSchema(),
                                              {SimpleBatch(10)}, clock.Now()))
                  .ok());
  ASSERT_TRUE(storage.StreamExists("s1"));
  auto handle = storage.OpenStream("s1");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->total_rows, 10);
  EXPECT_EQ((*handle)->guid, "g1");
  ASSERT_TRUE(storage.DeleteStream("s1").ok());
  EXPECT_FALSE(storage.StreamExists("s1"));
  EXPECT_TRUE(storage.OpenStream("s1").status().IsNotFound());
  EXPECT_TRUE(storage.DeleteStream("s1").IsNotFound());
}

TEST(StorageTest, EmptyNameRejected) {
  SimulatedClock clock;
  StorageManager storage(&clock);
  EXPECT_TRUE(storage
                  .WriteStream(MakeStreamData("", "g", SimpleSchema(), {},
                                              clock.Now()))
                  .IsInvalidArgument());
}

TEST(StorageTest, ReplaceInstallsNewVersion) {
  SimulatedClock clock;
  StorageManager storage(&clock);
  ASSERT_TRUE(storage
                  .WriteStream(MakeStreamData("s", "g1", SimpleSchema(),
                                              {SimpleBatch(1)}, clock.Now()))
                  .ok());
  // An old reader holds the first version; a rewrite must not disturb it.
  auto old_handle = *storage.OpenStream("s");
  ASSERT_TRUE(storage
                  .WriteStream(MakeStreamData("s", "g2", SimpleSchema(),
                                              {SimpleBatch(5)}, clock.Now()))
                  .ok());
  EXPECT_EQ(old_handle->guid, "g1");
  EXPECT_EQ((*storage.OpenStream("s"))->guid, "g2");
  EXPECT_EQ((*storage.OpenStream("s"))->total_rows, 5);
}

TEST(StorageTest, PurgeExpiredHonorsClock) {
  SimulatedClock clock(1000);
  StorageManager storage(&clock);
  ASSERT_TRUE(storage
                  .WriteStream(MakeStreamData("keeps", "g", SimpleSchema(),
                                              {SimpleBatch(1)}, clock.Now(),
                                              /*expires_at=*/0))
                  .ok());
  ASSERT_TRUE(storage
                  .WriteStream(MakeStreamData("hourly", "g", SimpleSchema(),
                                              {SimpleBatch(1)}, clock.Now(),
                                              clock.Now() + kSecondsPerHour))
                  .ok());
  ASSERT_TRUE(storage
                  .WriteStream(MakeStreamData("weekly", "g", SimpleSchema(),
                                              {SimpleBatch(1)}, clock.Now(),
                                              clock.Now() + kSecondsPerWeek))
                  .ok());
  EXPECT_EQ(storage.PurgeExpired(), 0u);
  clock.AdvanceSeconds(kSecondsPerDay);
  EXPECT_EQ(storage.PurgeExpired(), 1u);  // hourly gone
  EXPECT_TRUE(storage.StreamExists("weekly"));
  clock.AdvanceSeconds(kSecondsPerWeek);
  EXPECT_EQ(storage.PurgeExpired(), 1u);  // weekly gone
  EXPECT_TRUE(storage.StreamExists("keeps"));
}

TEST(StorageTest, ListByPrefixAndTotals) {
  SimulatedClock clock;
  StorageManager storage(&clock);
  for (const char* name : {"/views/a", "/views/b", "/data/c"}) {
    ASSERT_TRUE(storage
                    .WriteStream(MakeStreamData(name, "g", SimpleSchema(),
                                                {SimpleBatch(3)},
                                                clock.Now()))
                    .ok());
  }
  EXPECT_EQ(storage.ListStreams("/views/").size(), 2u);
  EXPECT_EQ(storage.ListStreams().size(), 3u);
  EXPECT_EQ(storage.NumStreams(), 3u);
  EXPECT_GT(storage.TotalBytes(), 0);
}

TEST(StorageTest, ConcurrentWritersAndReaders) {
  SimulatedClock clock;
  StorageManager storage(&clock);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&storage, &clock, t] {
      for (int i = 0; i < 50; ++i) {
        std::string name = "s" + std::to_string(t) + "_" + std::to_string(i);
        ASSERT_TRUE(storage
                        .WriteStream(MakeStreamData(name, "g", SimpleSchema(),
                                                    {SimpleBatch(2)},
                                                    clock.Now()))
                        .ok());
        ASSERT_TRUE(storage.OpenStream(name).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(storage.NumStreams(), 200u);
}

}  // namespace
}  // namespace cloudviews
