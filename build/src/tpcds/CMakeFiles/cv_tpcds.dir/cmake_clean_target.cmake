file(REMOVE_RECURSE
  "libcv_tpcds.a"
)
