#include "net/server.h"

#include <utility>

#include "common/clock.h"
#include "net/outcome.h"
#include "obs/export.h"
#include "obs/json.h"
#include "parser/parser.h"

namespace cloudviews {
namespace net {

namespace {

/// Rebuilds the parser's typed parameter map from the wire encoding.
Status ParamsFromWire(const std::vector<WireParam>& wire, ParamMap* out) {
  out->clear();
  for (const WireParam& p : wire) {
    if (p.name.empty()) {
      return Status::InvalidArgument("empty parameter name");
    }
    switch (p.kind) {
      case WireParamKind::kDate:
        (*out)[p.name] = DateParam(p.text);
        break;
      case WireParamKind::kInt:
        (*out)[p.name] = IntParam(p.int_value);
        break;
      case WireParamKind::kString:
        (*out)[p.name] = StringParam(p.text);
        break;
    }
  }
  return Status::OK();
}

}  // namespace

JobServiceServer::JobServiceServer(CloudViews* cv, NetServerConfig config)
    : cv_(cv),
      config_(std::move(config)),
      admission_({config_.per_connection_inflight_cap, config_.retry_after_ms},
                 cv->config().fault, cv->metrics()),
      queue_({config_.submission_queue_capacity,
              config_.submission_workers, "net"},
             cv->metrics()) {
  obs::MetricsRegistry* metrics = cv_->metrics();
  requests_total_ = metrics->GetCounter("cv_net_requests_total", {},
                                        "Frames dispatched by the server");
  conns_total_ = metrics->GetCounter("cv_net_connections_total", {},
                                     "Connections accepted");
  conns_rejected_ =
      metrics->GetCounter("cv_net_connections_rejected_total", {},
                          "Connections dropped at accept (cap or fault)");
  protocol_errors_ = metrics->GetCounter(
      "cv_net_protocol_errors_total", {},
      "Malformed frames / payloads answered with kError or a close");
  conns_gauge_ =
      metrics->GetGauge("cv_net_connections", {}, "Open connections");
  request_seconds_ =
      metrics->GetHistogram("cv_net_request_seconds", {}, {},
                            "Submit wall time, admission to response");
}

JobServiceServer::~JobServiceServer() { Stop(); }

Result<uint16_t> JobServiceServer::Start() {
  if (started_.exchange(true)) {
    return Status(StatusCode::kAlreadyExists, "server already started");
  }
  CV_ASSIGN_OR_RETURN(listener_,
                      Socket::Listen(config_.bind_address, config_.port,
                                     config_.listen_backlog));
  CV_ASSIGN_OR_RETURN(uint16_t port, listener_.BoundPort());
  port_ = port;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void JobServiceServer::Stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  // 1. Refuse new work: later Acquire calls shed with kDraining, and the
  //    listener stops producing connections.
  admission_.SetDraining();
  listener_.ShutdownBoth();
  if (accept_thread_.joinable()) accept_thread_.join();
  // 2. Drain: everything already admitted runs to completion and its
  //    response is sent before any socket is torn down.
  queue_.Drain();
  queue_.Shutdown();
  // 3. Unblock connection readers and join them.
  {
    MutexLock lock(conns_mu_);
    for (auto& conn : conns_) conn->sock.ShutdownBoth();
  }
  std::vector<std::shared_ptr<Connection>> conns;
  {
    MutexLock lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  conns_gauge_->Set(0);
}

ServerStatsResponse JobServiceServer::Stats() const {
  ServerStatsResponse stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.shed_queue_full = admission_.shed_count(ShedReason::kQueueFull);
  stats.shed_conn_cap = admission_.shed_count(ShedReason::kConnCap);
  stats.shed_draining = admission_.shed_count(ShedReason::kDraining);
  stats.shed_injected = admission_.shed_count(ShedReason::kInjected);
  stats.queue_depth = queue_.depth();
  stats.inflight = admission_.inflight();
  {
    MutexLock lock(conns_mu_);
    stats.connections = conns_.size();
  }
  return stats;
}

void JobServiceServer::ReapFinishedConnections() {
  std::vector<std::shared_ptr<Connection>> dead;
  {
    MutexLock lock(conns_mu_);
    auto it = conns_.begin();
    while (it != conns_.end()) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock; these threads have already flagged done.
  for (auto& conn : dead) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void JobServiceServer::AcceptLoop() {
  fault::FaultInjector* fault = cv_->config().fault;
  while (!stopping_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kAborted) break;
      // Transient accept failure (e.g. EMFILE): keep serving.
      continue;
    }
    ReapFinishedConnections();
    if (fault != nullptr &&
        !fault->MaybeInject(fault::points::kNetAccept).ok()) {
      conns_rejected_->Increment();
      continue;  // the accepted socket drops on scope exit
    }
    size_t live = 0;
    {
      MutexLock lock(conns_mu_);
      live = conns_.size();
    }
    if (live >= static_cast<size_t>(config_.max_connections)) {
      conns_rejected_->Increment();
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->id = next_conn_id_.fetch_add(1);
    conn->sock = std::move(*accepted);
    conns_total_->Increment();
    {
      MutexLock lock(conns_mu_);
      conns_.push_back(conn);
      conns_gauge_->Set(static_cast<double>(conns_.size()));
    }
    conn->thread = std::thread([this, conn] { ConnectionLoop(conn); });
  }
}

void JobServiceServer::ConnectionLoop(
    const std::shared_ptr<Connection>& conn) {
  fault::FaultInjector* fault = cv_->config().fault;
  const std::string conn_key = std::to_string(conn->id);
  for (;;) {
    if (fault != nullptr &&
        !fault->MaybeInject(fault::points::kNetRead, conn_key).ok()) {
      break;  // injected mid-stream drop
    }
    FrameHeader header;
    std::string payload;
    Status status = RecvFrame(&conn->sock, &header, &payload);
    if (!status.ok()) {
      switch (status.code()) {
        case StatusCode::kUnimplemented:  // version mismatch
        case StatusCode::kOutOfRange:     // oversized length prefix
          protocol_errors_->Increment();
          (void)SendError(conn.get(), status);  // close either way
          break;
        case StatusCode::kAborted:  // clean close / shutdown / bad magic
          break;
        default:  // truncated frame, reset, ...
          protocol_errors_->Increment();
          break;
      }
      break;
    }
    if (!HandleFrame(conn, header, payload)) break;
  }
  conn->sock.ShutdownBoth();
  conn->done.store(true, std::memory_order_release);
  {
    MutexLock lock(conns_mu_);
    // conns_ may already have dropped this entry (Stop swap); the gauge
    // tracks the vector either way.
    size_t live = 0;
    for (const auto& c : conns_) {
      if (!c->done.load(std::memory_order_acquire)) ++live;
    }
    conns_gauge_->Set(static_cast<double>(live));
  }
}

bool JobServiceServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                                   const FrameHeader& header,
                                   const std::string& payload) {
  requests_total_->Increment();
  if (!IsRequestType(header.type)) {
    protocol_errors_->Increment();
    // Framing is intact, so the connection survives an unknown tag: reply
    // with a typed error and keep reading.
    return SendError(conn.get(),
                     Status::InvalidArgument(
                         "unknown request type " +
                         std::to_string(static_cast<int>(header.type))));
  }
  switch (static_cast<MsgType>(header.type)) {
    case MsgType::kSubmit:
      return HandleSubmit(conn, payload);
    case MsgType::kStatusQuery: {
      StatusQueryRequest req;
      Status st = DecodeStatusQueryRequest(payload, &req);
      if (!st.ok()) {
        protocol_errors_->Increment();
        return SendError(conn.get(), st);
      }
      StatusResultResponse resp;
      resp.ticket = req.ticket;
      {
        MutexLock lock(job_mu_);
        auto it = jobs_.find(req.ticket);
        if (it == jobs_.end()) {
          // Fall through to a typed not-found below (outside the lock).
        } else {
          resp.state = it->second.state;
          resp.outcome = it->second.outcome;
          resp.timings = it->second.timings;
          resp.error_code = it->second.error_code;
          resp.error_message = it->second.error_message;
          WireWriter w;
          EncodeStatusResultResponse(resp, &w);
          return SendResponse(conn.get(), MsgType::kStatusResult, w.bytes());
        }
      }
      return SendError(conn.get(), Status::NotFound(
                                       "unknown ticket " +
                                       std::to_string(req.ticket)));
    }
    case MsgType::kProfileFetch: {
      ProfileFetchRequest req;
      Status st = DecodeProfileFetchRequest(payload, &req);
      if (!st.ok()) {
        protocol_errors_->Increment();
        return SendError(conn.get(), st);
      }
      ProfileResultResponse resp;
      resp.ticket = req.ticket;
      bool ready = false;
      bool known = false;
      {
        MutexLock lock(job_mu_);
        auto it = jobs_.find(req.ticket);
        if (it != jobs_.end()) {
          known = true;
          if (it->second.state == WireJobState::kDone ||
              it->second.state == WireJobState::kFailed) {
            ready = true;
            resp.profile_json = it->second.profile_json;
          }
        }
      }
      if (!known) {
        return SendError(conn.get(), Status::NotFound(
                                         "unknown ticket " +
                                         std::to_string(req.ticket)));
      }
      if (!ready) {
        return SendError(conn.get(),
                         Status::NotFound("profile not ready for ticket " +
                                          std::to_string(req.ticket)));
      }
      WireWriter w;
      EncodeProfileResultResponse(resp, &w);
      return SendResponse(conn.get(), MsgType::kProfileResult, w.bytes());
    }
    case MsgType::kServerStats: {
      if (!payload.empty()) {
        protocol_errors_->Increment();
        return SendError(
            conn.get(),
            Status(StatusCode::kParseError, "server-stats takes no payload"));
      }
      WireWriter w;
      EncodeServerStatsResponse(Stats(), &w);
      return SendResponse(conn.get(), MsgType::kServerStatsResult, w.bytes());
    }
    default:
      return false;  // unreachable: IsRequestType filtered already
  }
}

bool JobServiceServer::HandleSubmit(const std::shared_ptr<Connection>& conn,
                                    const std::string& payload) {
  SubmitRequest req;
  Status st = DecodeSubmitRequest(payload, &req);
  if (!st.ok()) {
    protocol_errors_->Increment();
    return SendError(conn.get(), st);
  }

  // The request's root span; the job's whole lifecycle nests under it so a
  // wire job's profile carries compile/execute exactly like an in-process
  // one, plus the front-door framing.
  auto span = std::make_shared<obs::Span>(
      cv_->tracer()->StartTrace("net.request"));
  span->SetAttribute("request", "submit");
  span->SetAttribute("connection", static_cast<uint64_t>(conn->id));
  span->SetAttribute("template_id", req.template_id);

  ParamMap params;
  st = ParamsFromWire(req.params, &params);
  if (!st.ok()) {
    protocol_errors_->Increment();
    return SendError(conn.get(), st);
  }
  JobDefinition def;
  {
    obs::Span parse_span = span->StartChild("parse");
    StorageManager* storage = cv_->storage();
    ScopeScriptParser parser;
    auto plan =
        parser.Parse(req.script, params, [storage](const std::string& name) {
          auto handle = storage->OpenStream(name);
          return handle.ok() ? (*handle)->guid : std::string();
        });
    if (!plan.ok()) {
      parse_span.SetAttribute("error", plan.status().ToString());
      return SendError(conn.get(), plan.status());
    }
    def.logical_plan = std::move(*plan);
  }
  def.template_id = req.template_id;
  def.cluster = req.cluster;
  def.business_unit = req.business_unit;
  def.vc = req.vc;
  def.user = req.user;
  def.recurring_instance = static_cast<int>(req.recurring_instance);
  def.recurrence_period =
      static_cast<LogicalTime>(req.recurrence_period_seconds);
  def.tags = req.tags;

  auto admit = admission_.Acquire(conn->id);
  if (!admit.admitted) {
    return SendRetryAfter(conn.get(), admit.reason);
  }
  uint64_t ticket = NewTicket();
  RecordQueued(ticket);
  span->SetAttribute("ticket", ticket);

  double admit_seconds = MonotonicNowSeconds();
  auto token = std::make_shared<AdmissionToken>(std::move(admit.token));
  auto def_ptr = std::make_shared<JobDefinition>(std::move(def));
  bool enable_cloudviews = req.enable_cloudviews;
  bool wait = req.wait;
  auto run = [this, conn, ticket, def_ptr, enable_cloudviews, wait,
              admit_seconds, span, token] {
    RunSubmission(conn, ticket, *def_ptr, enable_cloudviews, wait,
                  admit_seconds, span, token.get());
  };
  SubmissionQueue::Admit enq = queue_.TryEnqueue(std::move(run));
  if (enq != SubmissionQueue::Admit::kAdmitted) {
    ShedReason reason = enq == SubmissionQueue::Admit::kQueueFull
                            ? ShedReason::kQueueFull
                            : ShedReason::kDraining;
    admission_.RecordShed(reason);
    {
      MutexLock lock(job_mu_);
      jobs_.erase(ticket);  // never ran; the ticket is void
    }
    return SendRetryAfter(conn.get(), reason);
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (!wait) {
    AcceptedResponse resp;
    resp.ticket = ticket;
    WireWriter w;
    EncodeAcceptedResponse(resp, &w);
    return SendResponse(conn.get(), MsgType::kAccepted, w.bytes());
  }
  return true;
}

void JobServiceServer::RunSubmission(const std::shared_ptr<Connection>& conn,
                                     uint64_t ticket, const JobDefinition& def,
                                     bool enable_cloudviews, bool wait,
                                     double admit_seconds,
                                     const std::shared_ptr<obs::Span>& span,
                                     AdmissionToken* token) {
  RecordRunning(ticket);
  double queue_seconds = MonotonicNowSeconds() - admit_seconds;

  JobServiceOptions options;
  options.enable_cloudviews = enable_cloudviews;
  options.parent_span = span.get();
  auto result = cv_->Submit(def, options);

  // Finish the net.request root now so the profile JSON (this request's
  // span tree, with the job nested inside) is complete before it is stored
  // or the response goes out.
  auto record = span->Finish();
  std::string profile_json;
  if (record != nullptr) {
    obs::JsonWriter w;
    obs::SpanToJson(*record, &w);
    profile_json = w.Take();
  }

  if (result.ok()) {
    JobOutcome outcome = OutcomeFromJobResult(*result, cv_->storage());
    WireTimings timings = TimingsFromJobResult(*result);
    timings.queue_seconds = queue_seconds;
    RecordDone(ticket, outcome, timings, std::move(profile_json));
    completed_.fetch_add(1, std::memory_order_relaxed);
    request_seconds_->Observe(MonotonicNowSeconds() - admit_seconds);
    // Release before the response goes out: once a client holds a reply,
    // its in-flight slot is observably free (tests and retry loops rely on
    // that ordering).
    token->Release();
    if (wait) {
      SubmitResultResponse resp;
      resp.ticket = ticket;
      resp.outcome = outcome;
      resp.timings = timings;
      WireWriter w;
      EncodeSubmitResultResponse(resp, &w);
      (void)SendResponse(conn.get(), MsgType::kSubmitResult, w.bytes());
    }
  } else {
    RecordFailed(ticket, result.status(), std::move(profile_json));
    failed_.fetch_add(1, std::memory_order_relaxed);
    request_seconds_->Observe(MonotonicNowSeconds() - admit_seconds);
    token->Release();
    if (wait) {
      (void)SendError(conn.get(), result.status());
    }
  }
}

bool JobServiceServer::SendResponse(Connection* conn, MsgType type,
                                    const std::string& payload) {
  fault::FaultInjector* fault = cv_->config().fault;
  if (fault != nullptr &&
      !fault->MaybeInject(fault::points::kNetWrite,
                          std::to_string(conn->id))
           .ok()) {
    // Injected write failure: the response is lost and the connection is
    // torn down, exactly like a peer reset mid-write.
    conn->sock.ShutdownBoth();
    return false;
  }
  MutexLock lock(conn->write_mu);
  Status st = SendFrame(&conn->sock, type, payload);
  if (!st.ok()) {
    conn->sock.ShutdownBoth();
    return false;
  }
  return true;
}

bool JobServiceServer::SendError(Connection* conn, const Status& status) {
  ErrorResponse resp;
  resp.code = static_cast<uint8_t>(status.code());
  resp.message = status.message();
  WireWriter w;
  EncodeErrorResponse(resp, &w);
  return SendResponse(conn, MsgType::kError, w.bytes());
}

bool JobServiceServer::SendRetryAfter(Connection* conn, ShedReason reason) {
  RetryAfterResponse resp;
  resp.reason = reason;
  resp.retry_after_ms = admission_.retry_after_ms();
  WireWriter w;
  EncodeRetryAfterResponse(resp, &w);
  return SendResponse(conn, MsgType::kRetryAfter, w.bytes());
}

void JobServiceServer::RecordQueued(uint64_t ticket) {
  MutexLock lock(job_mu_);
  jobs_[ticket].state = WireJobState::kQueued;
}

void JobServiceServer::RecordRunning(uint64_t ticket) {
  MutexLock lock(job_mu_);
  jobs_[ticket].state = WireJobState::kRunning;
}

void JobServiceServer::RecordDone(uint64_t ticket, const JobOutcome& outcome,
                                  const WireTimings& timings,
                                  std::string profile_json) {
  MutexLock lock(job_mu_);
  JobRecord& rec = jobs_[ticket];
  rec.state = WireJobState::kDone;
  rec.outcome = outcome;
  rec.timings = timings;
  rec.profile_json = std::move(profile_json);
  finished_order_.push_back(ticket);
  EvictFinishedLocked();
}

void JobServiceServer::RecordFailed(uint64_t ticket, const Status& status,
                                    std::string profile_json) {
  MutexLock lock(job_mu_);
  JobRecord& rec = jobs_[ticket];
  rec.state = WireJobState::kFailed;
  rec.error_code = static_cast<uint8_t>(status.code());
  rec.error_message = status.message();
  rec.profile_json = std::move(profile_json);
  finished_order_.push_back(ticket);
  EvictFinishedLocked();
}

void JobServiceServer::EvictFinishedLocked() {
  while (jobs_.size() > config_.job_table_capacity &&
         !finished_order_.empty()) {
    uint64_t oldest = finished_order_.front();
    finished_order_.pop_front();
    jobs_.erase(oldest);
  }
}

}  // namespace net
}  // namespace cloudviews
