#ifndef CLOUDVIEWS_COMMON_STATUS_H_
#define CLOUDVIEWS_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace cloudviews {

/// \brief Error categories used across the library.
///
/// The library does not throw exceptions across module boundaries; every
/// fallible operation returns a Status (or a Result<T>, see result.h).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kAborted = 7,
  kExpired = 8,
  kParseError = 9,
  kTypeError = 10,
  kIOError = 11,
  /// A materialized view could not be read; the job must transparently
  /// fall back to its original (non-rewritten) plan rather than fail.
  kViewUnavailable = 12,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no allocation; error statuses carry a heap-allocated
/// message. Modeled on the Arrow/RocksDB Status idiom. The class is
/// [[nodiscard]]: a call site that drops a returned Status on the floor is a
/// compile error (silence genuinely-intentional drops with `(void)` plus a
/// comment saying why the error does not matter).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Expired(std::string msg) {
    return Status(StatusCode::kExpired, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ViewUnavailable(std::string msg) {
    return Status(StatusCode::kViewUnavailable, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return state_ == nullptr; }
  [[nodiscard]] StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  [[nodiscard]] const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  [[nodiscard]] bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  [[nodiscard]] bool IsNotFound() const {
    return code() == StatusCode::kNotFound;
  }
  [[nodiscard]] bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  [[nodiscard]] bool IsAborted() const {
    return code() == StatusCode::kAborted;
  }
  [[nodiscard]] bool IsExpired() const {
    return code() == StatusCode::kExpired;
  }
  [[nodiscard]] bool IsParseError() const {
    return code() == StatusCode::kParseError;
  }
  [[nodiscard]] bool IsTypeError() const {
    return code() == StatusCode::kTypeError;
  }
  [[nodiscard]] bool IsIOError() const {
    return code() == StatusCode::kIOError;
  }
  [[nodiscard]] bool IsViewUnavailable() const {
    return code() == StatusCode::kViewUnavailable;
  }

  /// Returns "OK" or "<code name>: <message>".
  [[nodiscard]] std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

namespace internal {
/// Prints `what` plus the status and calls std::abort. Used by Result's
/// error-access paths; kept out of line so the hot path stays small.
[[noreturn]] void AbortWithStatus(const char* what, const Status& status);
}  // namespace internal

/// Propagates a non-OK Status to the caller.
#define CV_RETURN_NOT_OK(expr)                  \
  do {                                          \
    ::cloudviews::Status _st = (expr);          \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace cloudviews

#endif  // CLOUDVIEWS_COMMON_STATUS_H_
