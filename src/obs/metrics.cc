#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>

namespace cloudviews {
namespace obs {

namespace {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void SortLabels(Labels* labels) {
  std::sort(labels->begin(), labels->end());
}

}  // namespace

Histogram::Histogram(HistogramOptions opts) {
  if (opts.num_buckets < 1) opts.num_buckets = 1;
  if (opts.growth <= 1.0) opts.growth = 2.0;
  if (opts.first_bound <= 0) opts.first_bound = 1e-6;
  bounds_.reserve(static_cast<size_t>(opts.num_buckets));
  double bound = opts.first_bound;
  for (int i = 0; i < opts.num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= opts.growth;
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // Exact upper-bound semantics (value <= bound): a binary search over at
  // most ~30 bounds, then two relaxed atomic adds.
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

std::string RenderLabels(const Labels& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    for (char c : labels[i].second) {
      if (c == '\\' || c == '"') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += '"';
  }
  return out;
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

MetricsRegistry::Instrument* MetricsRegistry::Register(
    const std::string& name, Labels* labels, MetricType type,
    const std::string& help, const HistogramOptions* opts) {
  SortLabels(labels);
  std::string key = RenderLabels(*labels);
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mu);
  auto& family = shard.metrics[name];
  auto it = family.find(key);
  if (it != family.end()) {
    if (it->second.type != type) {
      std::fprintf(stderr,
                   "MetricsRegistry: '%s' re-registered with a different "
                   "instrument type\n",
                   name.c_str());
      std::abort();
    }
    return &it->second;
  }
  Instrument inst;
  inst.type = type;
  inst.help = help;
  inst.labels = *labels;
  switch (type) {
    case MetricType::kCounter:
      inst.counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      inst.gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      inst.histogram =
          std::make_unique<Histogram>(opts ? *opts : HistogramOptions{});
      break;
  }
  return &family.emplace(std::move(key), std::move(inst)).first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, Labels labels,
                                     const std::string& help) {
  return Register(name, &labels, MetricType::kCounter, help, nullptr)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Labels labels,
                                 const std::string& help) {
  return Register(name, &labels, MetricType::kGauge, help, nullptr)
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         Labels labels, HistogramOptions opts,
                                         const std::string& help) {
  return Register(name, &labels, MetricType::kHistogram, help, &opts)
      ->histogram.get();
}

std::vector<FamilySnapshot> MetricsRegistry::Snapshot() const {
  // Merge the per-shard maps into one name-sorted list. Values are read
  // with relaxed atomics: the snapshot is a consistent-enough point-in-time
  // view, not a linearizable one.
  std::map<std::string, FamilySnapshot> merged;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [name, family] : shard.metrics) {
      FamilySnapshot& fam = merged[name];
      fam.name = name;
      for (const auto& [key, inst] : family) {
        fam.type = inst.type;
        if (fam.help.empty()) fam.help = inst.help;
        (void)key;  // the map key is the canonical label rendering
        SeriesSnapshot series;
        series.labels = inst.labels;
        switch (inst.type) {
          case MetricType::kCounter:
            series.value = static_cast<double>(inst.counter->value());
            break;
          case MetricType::kGauge:
            series.value = inst.gauge->value();
            break;
          case MetricType::kHistogram:
            series.bounds = inst.histogram->bounds();
            series.bucket_counts = inst.histogram->BucketCounts();
            series.count = inst.histogram->count();
            series.sum = inst.histogram->sum();
            break;
        }
        fam.series.push_back(std::move(series));
      }
    }
  }
  std::vector<FamilySnapshot> out;
  out.reserve(merged.size());
  for (auto& [name, fam] : merged) {
    std::sort(fam.series.begin(), fam.series.end(),
              [](const SeriesSnapshot& a, const SeriesSnapshot& b) {
                return a.labels < b.labels;
              });
    out.push_back(std::move(fam));
  }
  return out;
}

}  // namespace obs
}  // namespace cloudviews
