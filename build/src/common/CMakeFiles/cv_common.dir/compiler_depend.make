# Empty compiler generated dependencies file for cv_common.
# This may be replaced when dependencies are built.
