file(REMOVE_RECURSE
  "CMakeFiles/recurring_pipeline.dir/recurring_pipeline.cpp.o"
  "CMakeFiles/recurring_pipeline.dir/recurring_pipeline.cpp.o.d"
  "recurring_pipeline"
  "recurring_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recurring_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
