#include <gtest/gtest.h>

#include "core/cloudviews.h"
#include "tests/test_util.h"

namespace cloudviews {
namespace {

using testing_util::SharedAggPlan;
using testing_util::WriteClickStream;

/// Two recurring job templates sharing the SharedAggPlan computation.
JobDefinition JobA(const std::string& date) {
  JobDefinition def;
  def.template_id = "jobA";
  def.cluster = "c1";
  def.business_unit = "bu1";
  def.vc = "vc1";
  def.user = "alice";
  def.recurrence_period = kSecondsPerDay;
  def.logical_plan = PlanBuilder::From(SharedAggPlan(date))
                         .Sort({{"n", false}})
                         .Output("jobA_out_" + date)
                         .Build();
  return def;
}

JobDefinition JobB(const std::string& date,
                   const std::string& out_suffix = "") {
  JobDefinition def;
  def.template_id = "jobB";
  def.cluster = "c1";
  def.business_unit = "bu1";
  def.vc = "vc2";
  def.user = "bob";
  def.recurrence_period = kSecondsPerDay;
  def.logical_plan =
      PlanBuilder::From(SharedAggPlan(date))
          .Filter(Gt(Col("n"), Lit(int64_t{0})))
          .Output("jobB_out_" + date + out_suffix)
          .Build();
  return def;
}

class RuntimeTest : public ::testing::Test {
 protected:
  void WriteDay(const std::string& date) {
    WriteClickStream(cv_.storage(), "clicks_" + date, 2000,
                     std::hash<std::string>{}(date), date);
  }

  static CloudViewsConfig MakeCvConfig() {
    CloudViewsConfig config;
    config.analyzer.selection.top_k = 1;
    config.analyzer.selection.min_frequency = 2;
    return config;
  }

  CloudViews cv_{MakeCvConfig()};
};

TEST_F(RuntimeTest, PlainJobRunsAndRecordsHistory) {
  WriteDay("2018-01-01");
  auto result = cv_.Submit(JobA("2018-01-01"), /*enable_cloudviews=*/false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->views_reused, 0);
  EXPECT_EQ(result->views_materialized, 0);
  EXPECT_TRUE(cv_.storage()->StreamExists("jobA_out_2018-01-01"));
  EXPECT_EQ(cv_.repository()->NumJobs(), 1u);
  EXPECT_GT(cv_.repository()->NumIndexedSubgraphs(), 0u);
}

TEST_F(RuntimeTest, FeedbackStatisticsFlowIntoSecondCompilation) {
  WriteDay("2018-01-01");
  WriteDay("2018-01-02");
  ASSERT_TRUE(cv_.Submit(JobA("2018-01-01"), false).ok());
  auto second = cv_.Submit(JobA("2018-01-02"), false);
  ASSERT_TRUE(second.ok());
  // The shared aggregate subgraph now has observed statistics; at least
  // one node must be annotated from feedback.
  std::vector<PlanNode*> nodes;
  CollectNodes(second->executed_plan, &nodes);
  bool any_feedback = false;
  for (PlanNode* n : nodes) any_feedback |= n->estimates().from_feedback;
  EXPECT_TRUE(any_feedback);
}

TEST_F(RuntimeTest, MissingInputFailsCleanly) {
  auto result = cv_.Submit(JobA("2099-01-01"), false);
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(cv_.repository()->NumJobs(), 0u);
}

TEST_F(RuntimeTest, EndToEndMaterializeThenReuse) {
  // Day 1: plain runs build history.
  WriteDay("2018-01-01");
  ASSERT_TRUE(cv_.Submit(JobA("2018-01-01")).ok());
  ASSERT_TRUE(cv_.Submit(JobB("2018-01-01")).ok());

  auto analysis = cv_.RunAnalyzerAndLoad();
  ASSERT_EQ(analysis.annotations.size(), 1u);
  EXPECT_GE(analysis.annotations[0].annotation.frequency, 2);

  // Day 2: first job materializes, second reuses.
  WriteDay("2018-01-02");
  auto a = cv_.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->views_materialized, 1);
  EXPECT_EQ(a->views_reused, 0);
  EXPECT_EQ(cv_.metadata()->NumRegisteredViews(), 1u);

  auto b = cv_.Submit(JobB("2018-01-02"));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->views_reused, 1);
  EXPECT_EQ(b->views_materialized, 0);
  std::vector<PlanNode*> nodes;
  CollectNodes(b->executed_plan, &nodes);
  bool has_view_read = false;
  for (PlanNode* n : nodes) has_view_read |= n->kind() == OpKind::kViewRead;
  EXPECT_TRUE(has_view_read);
}

TEST_F(RuntimeTest, ReuseProducesIdenticalResults) {
  WriteDay("2018-01-01");
  ASSERT_TRUE(cv_.Submit(JobA("2018-01-01")).ok());
  ASSERT_TRUE(cv_.Submit(JobB("2018-01-01")).ok());
  cv_.RunAnalyzerAndLoad();

  WriteDay("2018-01-02");
  ASSERT_TRUE(cv_.Submit(JobA("2018-01-02")).ok());  // builds the view
  auto with_cv = cv_.Submit(JobB("2018-01-02"));
  ASSERT_TRUE(with_cv.ok());
  ASSERT_EQ(with_cv->views_reused, 1);
  auto without_cv = cv_.Submit(JobB("2018-01-02", "_check"), false);
  ASSERT_TRUE(without_cv.ok());

  auto reused = *cv_.storage()->OpenStream("jobB_out_2018-01-02");
  auto baseline = *cv_.storage()->OpenStream("jobB_out_2018-01-02_check");
  Batch rb = CombineBatches(reused->schema, reused->batches);
  Batch bb = CombineBatches(baseline->schema, baseline->batches);
  rb = SortBatch(rb, {{"page", true}});
  bb = SortBatch(bb, {{"page", true}});
  ASSERT_EQ(rb.num_rows(), bb.num_rows());
  for (size_t r = 0; r < rb.num_rows(); ++r) {
    auto rrow = rb.GetRow(r);
    auto brow = bb.GetRow(r);
    for (size_t c = 0; c < rrow.size(); ++c) {
      EXPECT_EQ(rrow[c].Compare(brow[c]), 0)
          << "row " << r << " col " << c;
    }
  }
}

TEST_F(RuntimeTest, ConcurrentJobsMaterializeExactlyOnce) {
  WriteDay("2018-01-01");
  ASSERT_TRUE(cv_.Submit(JobA("2018-01-01")).ok());
  ASSERT_TRUE(cv_.Submit(JobB("2018-01-01")).ok());
  cv_.RunAnalyzerAndLoad();

  WriteDay("2018-01-02");
  // Both jobs hit the same not-yet-materialized view concurrently; the
  // exclusive lock must let exactly one of them build it.
  std::vector<JobDefinition> defs{JobA("2018-01-02"), JobB("2018-01-02")};
  JobServiceOptions options;
  options.enable_cloudviews = true;
  auto results = cv_.job_service()->SubmitConcurrent(defs, options);
  int built = 0, denied = 0;
  for (auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    built += r->views_materialized;
    denied += r->materialize_lock_denied;
  }
  EXPECT_EQ(built, 1);
  EXPECT_EQ(cv_.metadata()->NumRegisteredViews(), 1u);
  EXPECT_EQ(cv_.metadata()->counters().locks_granted, 1u);
}

TEST_F(RuntimeTest, ConcurrentJobsShareTheWorkerPool) {
  // Several jobs running at once, each fanning morsel work out onto the
  // one pool the service owns; exercised under TSan in CI.
  WriteDay("2018-01-01");
  std::vector<JobDefinition> defs;
  for (int i = 0; i < 6; ++i) {
    defs.push_back(JobB("2018-01-01", "_p" + std::to_string(i)));
  }
  JobServiceOptions options;
  options.exec = ExecOptions{/*worker_threads=*/4, /*morsel_rows=*/128};
  auto results = cv_.job_service()->SubmitConcurrent(defs, options);
  ASSERT_EQ(results.size(), defs.size());
  for (auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r->run_stats.output_rows, 0);
  }

  // The parallel runs must agree with a single-threaded run of the same
  // job, row for row.
  auto ref = cv_.job_service()->SubmitJob(JobB("2018-01-01", "_serial"));
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->run_stats.output_rows, results[0]->run_stats.output_rows);
}

TEST_F(RuntimeTest, WorkloadChangeStopsMaterialization) {
  // Sec 6.2: "in case there is a change in query workload ... the view
  // materialization based on the previous workload analysis stops
  // automatically as the signatures do not match anymore."
  WriteDay("2018-01-01");
  ASSERT_TRUE(cv_.Submit(JobA("2018-01-01")).ok());
  ASSERT_TRUE(cv_.Submit(JobB("2018-01-01")).ok());
  cv_.RunAnalyzerAndLoad();

  // The template changes: different filter threshold -> new signatures.
  WriteDay("2018-01-02");
  JobDefinition changed;
  changed.template_id = "jobA";
  changed.vc = "vc1";
  changed.user = "alice";
  changed.logical_plan =
      PlanBuilder::Extract("clicks_{date}", "clicks_2018-01-02",
                           "guid-clicks_2018-01-02",
                           testing_util::ClickSchema())
          .Filter(Gt(Col("latency"), Lit(int64_t{99})))  // was 50
          .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"},
                                {AggFunc::kSum, Col("latency"),
                                 "total_latency"}})
          .Sort({{"n", false}})
          .Output("changed_out")
          .Build();
  auto result = cv_.Submit(changed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->views_materialized, 0);
  EXPECT_EQ(result->views_reused, 0);
}

TEST_F(RuntimeTest, SubtreeCpuAggregatesExclusiveTimes) {
  WriteDay("2018-01-01");
  auto result = cv_.Submit(JobA("2018-01-01"), false);
  ASSERT_TRUE(result.ok());
  double root_cpu = SubtreeCpuSeconds(*result->executed_plan,
                                      result->run_stats.operators);
  EXPECT_NEAR(root_cpu, result->run_stats.cpu_seconds, 1e-9);
}

}  // namespace
}  // namespace cloudviews
