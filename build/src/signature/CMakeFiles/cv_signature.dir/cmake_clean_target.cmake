file(REMOVE_RECURSE
  "libcv_signature.a"
)
