file(REMOVE_RECURSE
  "CMakeFiles/cv_signature.dir/signature.cc.o"
  "CMakeFiles/cv_signature.dir/signature.cc.o.d"
  "libcv_signature.a"
  "libcv_signature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_signature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
