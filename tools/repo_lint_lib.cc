#include "tools/repo_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cloudviews {
namespace lint {

namespace {

namespace fs = std::filesystem;

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if `token` occurs in `text` with no identifier character on either
/// side (so "srand" does not match "mysrandom").
bool ContainsToken(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    size_t end = pos + token.size();
    bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    // Tokens ending in '(' or ')' delimit themselves on that side.
    if (left_ok && (right_ok || !IsIdentChar(token.back()))) return true;
    pos += 1;
  }
  return false;
}

bool ContainsAnyToken(const std::string& text,
                      const std::vector<std::string>& tokens,
                      std::string* which) {
  for (const auto& t : tokens) {
    if (ContainsToken(text, t)) {
      *which = t;
      return true;
    }
  }
  return false;
}

/// A NOLINT *marker* is "NOLINT" opening a comment ("// NOLINT..." or
/// "/* NOLINT..."); prose that merely mentions NOLINT mid-sentence is not
/// a marker. A reasoned marker looks like "NOLINT(<category>): <why>" or
/// at minimum "NOLINT(<non-empty>)". Returns true when a marker (reasoned
/// or bare) exists; sets `reasoned` accordingly.
bool FindNolint(const std::string& raw_line, bool* reasoned) {
  size_t pos = 0;
  for (;;) {
    pos = raw_line.find("NOLINT", pos);
    if (pos == std::string::npos) return false;
    size_t before = pos;
    while (before > 0 && (raw_line[before - 1] == ' ' ||
                          raw_line[before - 1] == '\t')) {
      --before;
    }
    if (before >= 2 && raw_line[before - 2] == '/' &&
        (raw_line[before - 1] == '/' || raw_line[before - 1] == '*')) {
      break;  // comment-opening marker
    }
    pos += 6;
  }
  size_t after = pos + 6;  // strlen("NOLINT")
  // NOLINTNEXTLINE is treated like NOLINT for the reason requirement.
  if (raw_line.compare(after, 8, "NEXTLINE") == 0) after += 8;
  *reasoned = false;
  if (after < raw_line.size() && raw_line[after] == '(') {
    size_t close = raw_line.find(')', after);
    if (close != std::string::npos && close > after + 1) {
      *reasoned = true;
    }
  }
  return true;
}

/// True when the assert argument mutates state: ++/-- or an assignment
/// ('=' that is not part of ==, !=, <=, >=).
bool HasSideEffect(const std::string& arg) {
  if (arg.find("++") != std::string::npos) return true;
  if (arg.find("--") != std::string::npos) return true;
  for (size_t i = 0; i < arg.size(); ++i) {
    if (arg[i] != '=') continue;
    bool cmp_left =
        i > 0 && (arg[i - 1] == '=' || arg[i - 1] == '!' ||
                  arg[i - 1] == '<' || arg[i - 1] == '>');
    bool cmp_right = i + 1 < arg.size() && arg[i + 1] == '=';
    if (!cmp_left && !cmp_right) return true;  // plain or compound assign
  }
  return false;
}

/// Extracts the balanced-paren argument of the assert starting at the '('
/// at `open` in `text`; empty optional if unbalanced on this line batch.
bool BalancedArg(const std::string& text, size_t open, std::string* arg) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') {
      --depth;
      if (depth == 0) {
        *arg = text.substr(open + 1, i - open - 1);
        return true;
      }
    }
  }
  return false;
}

std::string ExpectedHeaderGuard(const std::string& rel_path) {
  std::string p = rel_path;
  // src/ is the include root, so it does not appear in guards; tests/ and
  // tools/ do (they are their own include namespaces).
  if (p.rfind("src/", 0) == 0) p = p.substr(4);
  std::string guard = "CLOUDVIEWS_";
  for (char c : p) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

bool PathContains(const std::string& rel_path, const char* needle) {
  return rel_path.find(needle) != std::string::npos;
}

}  // namespace

std::string SanitizeLine(const std::string& line, bool* in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (size_t i = 0; i < line.size(); ++i) {
    if (*in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        *in_block_comment = false;
        ++i;
      }
      continue;
    }
    char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      *in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      out += quote;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        ++i;
      }
      out += quote;  // keep delimiters so tokens cannot join across them
      continue;
    }
    out += c;
  }
  return out;
}

std::vector<Violation> LintFile(const std::string& display_path,
                                const std::string& rel_path,
                                const std::string& content) {
  std::vector<Violation> out;
  const bool is_header =
      rel_path.size() >= 2 && rel_path.rfind(".h") == rel_path.size() - 2;
  const bool in_random = PathContains(rel_path, "common/random");
  const bool is_mutex_header = PathContains(rel_path, "common/mutex.h");
  const bool in_clock =
      PathContains(rel_path, "common/clock") ||
      PathContains(rel_path, "src/obs/");
  const bool in_backoff = PathContains(rel_path, "fault/backoff");
  const bool is_metadata_header =
      is_header && PathContains(rel_path, "src/metadata/");
  const bool in_compensation_path =
      PathContains(rel_path, "optimizer/view_matcher.") ||
      PathContains(rel_path, "optimizer/view_rewriter.");

  static const std::vector<std::string> kRandomTokens = {
      "std::rand", "srand", "random_device", "time(nullptr)", "time(NULL)"};
  static const std::vector<std::string> kClockTokens = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  static const std::vector<std::string> kSleepTokens = {
      "sleep_for", "sleep_until", "usleep", "nanosleep"};
  static const std::vector<std::string> kSyncTokens = {
      "std::mutex",       "std::condition_variable", "std::lock_guard",
      "std::unique_lock", "std::scoped_lock",        "std::shared_mutex",
      "std::shared_lock", "std::recursive_mutex"};

  std::vector<std::string> raw_lines;
  {
    std::istringstream in(content);
    std::string line;
    while (std::getline(in, line)) raw_lines.push_back(line);
  }

  bool in_block_comment = false;
  bool saw_mutex_member = false;
  int first_mutex_line = 0;
  bool saw_guarded_by = false;
  bool suppress_next_line = false;

  for (size_t idx = 0; idx < raw_lines.size(); ++idx) {
    const std::string& raw = raw_lines[idx];
    const int line_no = static_cast<int>(idx) + 1;
    std::string text = SanitizeLine(raw, &in_block_comment);

    // NOLINT discipline first: a reasoned marker exempts the line from
    // every other rule; a bare marker is itself a violation (and exempts
    // nothing).
    bool reasoned = false;
    bool suppressed = suppress_next_line;
    suppress_next_line = false;
    if (FindNolint(raw, &reasoned)) {
      if (!reasoned) {
        out.push_back({display_path, line_no, "nolint-reason",
                       "NOLINT without a category and reason; write "
                       "NOLINT(<rule>): <why>"});
      } else {
        suppressed = true;
        if (raw.find("NOLINTNEXTLINE") != std::string::npos) {
          suppress_next_line = true;
        }
      }
    }

    // Whole-file bookkeeping runs even on suppressed lines.
    if (text.find("GUARDED_BY") != std::string::npos ||
        text.find("PT_GUARDED_BY") != std::string::npos) {
      saw_guarded_by = true;
    }
    if (is_header && !is_mutex_header) {
      // A member declaration like "Mutex mu_;" or "mutable Mutex mu_;".
      size_t pos = text.find("Mutex ");
      if (pos != std::string::npos &&
          (pos == 0 || !IsIdentChar(text[pos == 0 ? 0 : pos - 1]))) {
        std::string rest = text.substr(pos + 6);
        size_t j = 0;
        while (j < rest.size() && IsIdentChar(rest[j])) ++j;
        size_t k = j;
        while (k < rest.size() && rest[k] == ' ') ++k;
        if (j > 0 && k < rest.size() && rest[k] == ';' &&
            !saw_mutex_member) {
          saw_mutex_member = true;
          first_mutex_line = line_no;
        }
      }
    }

    if (suppressed) continue;

    std::string which;
    if (!in_random && ContainsAnyToken(text, kRandomTokens, &which)) {
      out.push_back({display_path, line_no, "banned-random",
                     "'" + which +
                         "' outside common/random; use cloudviews::Rng so "
                         "runs stay reproducible"});
    }
    if (!in_clock && ContainsAnyToken(text, kClockTokens, &which)) {
      out.push_back({display_path, line_no, "banned-clock",
                     "'" + which +
                         "' outside common/clock.h and src/obs; use "
                         "MonotonicClock / MonotonicNowSeconds so time is "
                         "injectable in tests"});
    }
    if (!in_backoff && ContainsAnyToken(text, kSleepTokens, &which)) {
      out.push_back({display_path, line_no, "banned-sleep",
                     "'" + which +
                         "' outside fault/backoff; hand-rolled sleeps in "
                         "retry loops are untestable — use "
                         "fault::RetryWithBackoff (with an injectable "
                         "Sleeper)"});
    }
    if (!is_mutex_header && ContainsAnyToken(text, kSyncTokens, &which)) {
      out.push_back({display_path, line_no, "banned-sync",
                     "'" + which +
                         "' outside common/mutex.h; use the annotated "
                         "Mutex/MutexLock/CondVar so clang -Wthread-safety "
                         "can check the locking"});
    }
    if (ContainsToken(text, "new")) {
      // "new" as an expression: skip type-trait-ish uses like "operator new".
      if (text.find("operator new") == std::string::npos) {
        out.push_back({display_path, line_no, "naked-new",
                       "naked 'new'; use std::make_unique/std::make_shared "
                       "(or NOLINT(naked-new): <why> for an intentional "
                       "leak)"});
      }
    }
    if (is_metadata_header) {
      size_t mpos = text.find("std::map<");
      if (mpos == std::string::npos) mpos = text.find("std::unordered_map<");
      if (mpos != std::string::npos) {
        // Join up to 3 following lines so a GUARDED_BY on the wrapped
        // continuation of the declaration is seen.
        std::string joined = text;
        bool bc = in_block_comment;
        for (size_t extra = 1;
             extra <= 3 && idx + extra < raw_lines.size(); ++extra) {
          joined += ' ';
          joined += SanitizeLine(raw_lines[idx + extra], &bc);
        }
        if (joined.find("GUARDED_BY(") != std::string::npos) {
          // A "shard-stripe" comment on this line or within the preceding
          // 4 raw lines justifies the map (raw lines: the justification
          // lives in a comment).
          bool justified = false;
          size_t lo = idx >= 4 ? idx - 4 : 0;
          for (size_t j = lo; j <= idx && !justified; ++j) {
            if (raw_lines[j].find("shard-stripe") != std::string::npos) {
              justified = true;
            }
          }
          if (!justified) {
            out.push_back(
                {display_path, line_no, "metadata-map-stripe",
                 "mutex-guarded map member in a src/metadata/ header; the "
                 "metadata hot path must stay sharded — stripe the map per "
                 "signature shard, or add a 'shard-stripe: <why>' comment "
                 "justifying the single lock"});
          }
        }
      }
    }
    if (in_compensation_path) {
      size_t cpos = text.find("make_shared<");
      if (cpos != std::string::npos) {
        // Join up to 2 following lines so a wrapped template argument
        // (`make_shared<\n    ViewReadNode>`) is still seen.
        std::string joined = text;
        bool bc = in_block_comment;
        for (size_t extra = 1;
             extra <= 2 && idx + extra < raw_lines.size(); ++extra) {
          joined += ' ';
          joined += SanitizeLine(raw_lines[idx + extra], &bc);
        }
        size_t tpos = joined.find("make_shared<") + 12;
        size_t tend = tpos;
        while (tend < joined.size() &&
               (IsIdentChar(joined[tend]) || joined[tend] == ':' ||
                joined[tend] == ' ')) {
          ++tend;
        }
        std::string type = joined.substr(tpos, tend - tpos);
        while (!type.empty() && type.back() == ' ') type.pop_back();
        if (type.size() >= 4 &&
            type.compare(type.size() - 4, 4, "Node") == 0) {
          // Every plan-node construction in the matcher / rewriter is a
          // compensation (or exact-replacement) operator whose byte-
          // identity argument must be written down: require a
          // "compensation:" justification comment on this line or within
          // the preceding 4 raw lines (raw: the justification is a
          // comment).
          bool justified = false;
          size_t lo = idx >= 4 ? idx - 4 : 0;
          for (size_t j = lo; j <= idx && !justified; ++j) {
            if (raw_lines[j].find("compensation:") != std::string::npos) {
              justified = true;
            }
          }
          if (!justified) {
            out.push_back(
                {display_path, line_no, "compensation-comment",
                 "plan-node construction ('" + type +
                     "') in the view-matching compensation path without a "
                     "nearby '// compensation: <why byte-identical>' "
                     "justification comment"});
          }
        }
      }
    }
    size_t apos = 0;
    while ((apos = text.find("assert", apos)) != std::string::npos) {
      bool word = (apos == 0 || !IsIdentChar(text[apos - 1])) &&
                  apos + 6 < text.size() && text[apos + 6] == '(';
      if (word) {
        // Join up to 3 following lines so multi-line asserts are covered.
        std::string joined = text;
        bool bc = in_block_comment;
        for (size_t extra = 1;
             extra <= 3 && idx + extra < raw_lines.size(); ++extra) {
          joined += ' ';
          joined += SanitizeLine(raw_lines[idx + extra], &bc);
        }
        std::string arg;
        if (BalancedArg(joined, apos + 6, &arg) && HasSideEffect(arg)) {
          out.push_back({display_path, line_no, "assert-side-effect",
                         "assert() argument has side effects; it vanishes "
                         "under NDEBUG"});
        }
      }
      apos += 6;
    }
  }

  if (saw_mutex_member && !saw_guarded_by) {
    out.push_back({display_path, first_mutex_line, "mutex-guarded",
                   "header declares a Mutex member but annotates nothing "
                   "with GUARDED_BY; annotate the state the mutex "
                   "protects"});
  }

  if (is_header) {
    std::string guard = ExpectedHeaderGuard(rel_path);
    if (content.find("#ifndef " + guard) == std::string::npos ||
        content.find("#define " + guard) == std::string::npos) {
      out.push_back({display_path, 1, "header-guard",
                     "expected include guard '" + guard + "'"});
    }
  }

  return out;
}

std::vector<Violation> LintTree(const std::vector<std::string>& roots) {
  std::vector<Violation> out;
  for (const auto& root : roots) {
    std::error_code ec;
    fs::path root_path(root);
    std::string prefix = root_path.filename().string();
    if (prefix.empty()) prefix = root_path.parent_path().filename().string();
    if (!fs::is_directory(root_path, ec)) {
      out.push_back({root, 0, "io-error", "not a directory"});
      continue;
    }
    std::vector<fs::path> files;
    for (fs::recursive_directory_iterator it(root_path, ec), end;
         it != end; it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::string p = it->path().string();
      if (p.find("lint_fixtures") != std::string::npos) continue;
      files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        out.push_back({file.string(), 0, "io-error", "unreadable file"});
        continue;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      std::string rel =
          prefix + "/" + fs::relative(file, root_path, ec).generic_string();
      auto violations = LintFile(file.string(), rel, ss.str());
      out.insert(out.end(), violations.begin(), violations.end());
    }
  }
  return out;
}

}  // namespace lint
}  // namespace cloudviews
