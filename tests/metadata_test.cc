#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "fault/fault_injector.h"
#include "metadata/metadata_service.h"

namespace cloudviews {
namespace {

Hash128 H(uint64_t a, uint64_t b = 0) { return Hash128{a, b}; }

AnnotatedComputation Comp(uint64_t sig, std::vector<std::string> tags) {
  AnnotatedComputation comp;
  comp.annotation.normalized_signature = H(sig);
  comp.annotation.frequency = 3;
  comp.annotation.avg_runtime_seconds = 10;
  comp.tags = std::move(tags);
  return comp;
}

class MetadataTest : public ::testing::Test {
 protected:
  MetadataTest() : storage_(&clock_), service_(&clock_, &storage_) {}

  SimulatedClock clock_;
  StorageManager storage_;
  MetadataService service_;
};

TEST_F(MetadataTest, InvertedIndexReturnsRelevantAnnotations) {
  service_.LoadAnalysis({Comp(1, {"template:a", "vc:v1"}),
                         Comp(2, {"template:b", "vc:v1"}),
                         Comp(3, {"template:c", "vc:v2"})});
  EXPECT_EQ(service_.NumAnnotations(), 3u);

  auto hits = service_.GetRelevantViews({"template:a"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].normalized_signature, H(1));

  // vc:v1 matches two computations (false positives are fine, Sec 6.1).
  EXPECT_EQ(service_.GetRelevantViews({"vc:v1"}).size(), 2u);
  EXPECT_EQ(service_.GetRelevantViews({"vc:nope"}).size(), 0u);
  // Multiple tags union their hits.
  EXPECT_EQ(service_.GetRelevantViews({"template:a", "vc:v2"}).size(), 2u);
}

TEST_F(MetadataTest, ReloadReplacesAnalysis) {
  service_.LoadAnalysis({Comp(1, {"t:a"})});
  service_.LoadAnalysis({Comp(2, {"t:b"})});
  EXPECT_EQ(service_.NumAnnotations(), 1u);
  EXPECT_EQ(service_.GetRelevantViews({"t:a"}).size(), 0u);
  EXPECT_EQ(service_.GetRelevantViews({"t:b"}).size(), 1u);
}

TEST_F(MetadataTest, LockLifecycle) {
  // Grant, deny while held, register releases.
  EXPECT_TRUE(service_.ProposeMaterialize(H(1), H(10), 100, 10));
  EXPECT_FALSE(service_.ProposeMaterialize(H(1), H(10), 101, 10));

  MaterializedViewInfo info;
  info.path = "/views/a/b_100.ss";
  info.normalized_signature = H(1);
  info.precise_signature = H(10);
  info.producer_job_id = 100;
  ASSERT_TRUE(service_.ReportMaterialized(info, 0).ok());

  // Now the view exists: propose fails, find succeeds.
  EXPECT_FALSE(service_.ProposeMaterialize(H(1), H(10), 102, 10));
  auto found = service_.FindMaterialized(H(1), H(10));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->producer_job_id, 100u);

  // A different precise instance is a different view.
  EXPECT_FALSE(service_.FindMaterialized(H(1), H(11)).has_value());
  EXPECT_TRUE(service_.ProposeMaterialize(H(1), H(11), 103, 10));
}

TEST_F(MetadataTest, LockExpiresAndAnotherJobRetries) {
  // Expected build 10s -> lock expiry = max(60, 2*10) = 60s.
  EXPECT_TRUE(service_.ProposeMaterialize(H(1), H(10), 100, 10));
  clock_.AdvanceSeconds(30);
  EXPECT_FALSE(service_.ProposeMaterialize(H(1), H(10), 101, 10));
  clock_.AdvanceSeconds(31);
  EXPECT_TRUE(service_.ProposeMaterialize(H(1), H(10), 101, 10));
}

TEST_F(MetadataTest, LongBuildsGetLongerLocks) {
  EXPECT_TRUE(service_.ProposeMaterialize(H(1), H(10), 100, 1000));
  clock_.AdvanceSeconds(1500);  // < 2 * 1000
  EXPECT_FALSE(service_.ProposeMaterialize(H(1), H(10), 101, 1000));
  clock_.AdvanceSeconds(501);
  EXPECT_TRUE(service_.ProposeMaterialize(H(1), H(10), 101, 1000));
}

TEST_F(MetadataTest, AbandonLockReleasesOnlyOwners) {
  EXPECT_TRUE(service_.ProposeMaterialize(H(1), H(10), 100, 10));
  service_.AbandonLock(H(10), 999);  // not the owner
  EXPECT_FALSE(service_.ProposeMaterialize(H(1), H(10), 101, 10));
  service_.AbandonLock(H(10), 100);
  EXPECT_TRUE(service_.ProposeMaterialize(H(1), H(10), 101, 10));
}

TEST_F(MetadataTest, FindHonorsExpiry) {
  MaterializedViewInfo info;
  info.path = "/views/a/b_1.ss";
  info.normalized_signature = H(1);
  info.precise_signature = H(10);
  ASSERT_TRUE(service_.ReportMaterialized(info, clock_.Now() + 100).ok());
  EXPECT_TRUE(service_.FindMaterialized(H(1), H(10)).has_value());
  clock_.AdvanceSeconds(101);
  EXPECT_FALSE(service_.FindMaterialized(H(1), H(10)).has_value());
}

TEST_F(MetadataTest, PurgeRemovesMetadataThenFiles) {
  Schema s({{"v", DataType::kInt64}});
  ASSERT_TRUE(storage_
                  .WriteStream(MakeStreamData("/views/a/b_1.ss", "g", s, {},
                                              clock_.Now()))
                  .ok());
  MaterializedViewInfo info;
  info.path = "/views/a/b_1.ss";
  info.normalized_signature = H(1);
  info.precise_signature = H(10);
  ASSERT_TRUE(service_.ReportMaterialized(info, clock_.Now() + 50).ok());
  EXPECT_EQ(service_.PurgeExpired(), 0u);
  clock_.AdvanceSeconds(51);
  EXPECT_EQ(service_.PurgeExpired(), 1u);
  EXPECT_EQ(service_.NumRegisteredViews(), 0u);
  EXPECT_FALSE(storage_.StreamExists("/views/a/b_1.ss"));
  EXPECT_EQ(service_.counters().views_purged, 1u);
}

TEST_F(MetadataTest, DropViewDeletesFile) {
  Schema s({{"v", DataType::kInt64}});
  ASSERT_TRUE(storage_
                  .WriteStream(MakeStreamData("/views/a/b_1.ss", "g", s, {},
                                              clock_.Now()))
                  .ok());
  MaterializedViewInfo info;
  info.path = "/views/a/b_1.ss";
  info.normalized_signature = H(1);
  info.precise_signature = H(10);
  ASSERT_TRUE(service_.ReportMaterialized(info, 0).ok());
  ASSERT_TRUE(service_.DropView(H(10)).ok());
  EXPECT_FALSE(storage_.StreamExists("/views/a/b_1.ss"));
  EXPECT_TRUE(service_.DropView(H(10)).IsNotFound());
}

TEST_F(MetadataTest, CountersTrackActivity) {
  service_.LoadAnalysis({Comp(1, {"t:a"})});
  service_.GetRelevantViews({"t:a"});
  service_.ProposeMaterialize(H(1), H(10), 1, 10);
  service_.ProposeMaterialize(H(1), H(10), 2, 10);
  auto c = service_.counters();
  EXPECT_EQ(c.lookups, 1u);
  EXPECT_EQ(c.proposals, 2u);
  EXPECT_EQ(c.locks_granted, 1u);
  EXPECT_EQ(c.locks_denied, 1u);
}

TEST_F(MetadataTest, LeaseTakeoverCleansOrphansOfTheSameJob) {
  // Regression: a builder writes a partial view, its own lease lapses
  // (torn write + slow retry), and the SAME job re-proposes. The takeover
  // must sweep the earlier partial just like a different-job reclamation —
  // skipping it leaked the file forever (nothing else ever deletes an
  // unregistered view file under an owned lock).
  Hash128 normalized = H(1), precise = H(10);
  ASSERT_TRUE(service_.ProposeMaterialize(normalized, precise, 100, 10));
  std::string partial = "/views/" + normalized.ToHex() + "/" +
                        precise.ToHex() + "_100.ss";
  Schema s({{"v", DataType::kInt64}});
  ASSERT_TRUE(
      storage_.WriteStream(MakeStreamData(partial, "g", s, {}, clock_.Now()))
          .ok());

  clock_.AdvanceSeconds(61);  // expected build 10 -> lock expiry 60s
  ASSERT_TRUE(service_.ProposeMaterialize(normalized, precise, 100, 10));
  EXPECT_FALSE(storage_.StreamExists(partial));
  EXPECT_EQ(service_.counters().orphans_cleaned, 1u);
  // Same-job takeover is not a lease reclamation (no other builder died).
  EXPECT_EQ(service_.counters().leases_reclaimed, 0u);

  // The different-job takeover still reclaims AND sweeps.
  ASSERT_TRUE(
      storage_.WriteStream(MakeStreamData(partial, "g", s, {}, clock_.Now()))
          .ok());
  clock_.AdvanceSeconds(61);
  ASSERT_TRUE(service_.ProposeMaterialize(normalized, precise, 200, 10));
  EXPECT_FALSE(storage_.StreamExists(partial));
  EXPECT_EQ(service_.counters().orphans_cleaned, 2u);
  EXPECT_EQ(service_.counters().leases_reclaimed, 1u);
}

TEST_F(MetadataTest, ProposeAttemptsCountInjectedCallsProposalsDoNot) {
  // propose_attempts counts every call; proposals counts only decisions
  // the service actually made. An injected propose fault is an attempt
  // that never reached the service, so attempts - proposals is exactly
  // the injected-denial count (see docs/job_profile_schema.md).
  fault::FaultInjector inj(5);
  fault::FaultSpec spec;
  spec.trigger_every = 2;  // every second propose is swallowed
  inj.Arm(fault::points::kMetadataPropose, spec);
  service_.SetFaultInjector(&inj);

  int granted = 0;
  for (uint64_t i = 0; i < 6; ++i) {
    if (service_.ProposeMaterialize(H(1), H(100 + i), i, 10)) ++granted;
  }
  auto c = service_.counters();
  EXPECT_EQ(c.propose_attempts, 6u);
  EXPECT_EQ(c.proposals, 3u);  // hits 2, 4, 6 were injected away
  EXPECT_EQ(c.propose_attempts - c.proposals, 3u);
  // Real decisions all granted (distinct signatures, no contention).
  EXPECT_EQ(c.locks_granted, 3u);
  EXPECT_EQ(c.locks_denied, 0u);
  EXPECT_EQ(granted, 3);
}

TEST_F(MetadataTest, AttemptsEqualProposalsWithoutInjection) {
  service_.ProposeMaterialize(H(1), H(10), 1, 10);
  service_.ProposeMaterialize(H(1), H(10), 2, 10);  // denied, still counted
  auto c = service_.counters();
  EXPECT_EQ(c.propose_attempts, 2u);
  EXPECT_EQ(c.proposals, 2u);
}

TEST(MetadataLatencyTest, ThreadsReduceSimulatedLatency) {
  SimulatedClock clock;
  StorageManager storage(&clock);
  MetadataServiceConfig config;
  config.base_lookup_latency_seconds = 0.019;
  config.service_threads = 1;
  MetadataService single(&clock, &storage, config);
  config.service_threads = 5;
  MetadataService five(&clock, &storage, config);
  EXPECT_NEAR(single.SimulatedLookupLatency(), 0.019, 1e-6);
  EXPECT_NEAR(five.SimulatedLookupLatency(), 0.0143, 0.001);
  EXPECT_LT(five.SimulatedLookupLatency(), single.SimulatedLookupLatency());
}

TEST_F(MetadataTest, ConcurrentProposalsGrantExactlyOne) {
  for (int round = 0; round < 10; ++round) {
    Hash128 precise = H(1000 + static_cast<uint64_t>(round));
    std::atomic<int> granted{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        if (service_.ProposeMaterialize(H(1), precise,
                                        static_cast<uint64_t>(t), 10)) {
          ++granted;
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(granted.load(), 1);
  }
}

}  // namespace
}  // namespace cloudviews
