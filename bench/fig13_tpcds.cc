// Reproduces Figure 13: per-query runtime improvement on the 99 TPC-DS
// queries with the top-10 overlapping computations materialized/reused.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "tpcds/tpcds.h"

namespace cloudviews {
namespace bench {
namespace {

int Run() {
  FigureHeader(
      "Figure 13", "TPC-DS: percentage runtime improvement per query",
      "79 of 99 queries improve with the conservative top-10 view "
      "selection; peak improvement and slowdown ~62%; average runtime "
      "improves 12.5%, total workload runtime improves 17%");

  CloudViewsConfig config;
  config.analyzer.selection.top_k = 10;
  config.analyzer.selection.min_frequency = 3;
  CloudViews cv(config);
  tpcds::TpcdsGenerator gen;
  Status st = gen.WriteTables(cv.storage());
  if (!st.ok()) {
    std::fprintf(stderr, "generator failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Baseline pass (also the history the analyzer mines).
  std::map<int, double> baseline;
  std::map<int, uint64_t> baseline_job_ids;
  for (int q = 1; q <= tpcds::kNumQueries; ++q) {
    auto r = cv.Submit(tpcds::MakeQueryJob(q), false);
    if (!r.ok()) {
      std::fprintf(stderr, "q%d failed: %s\n", q,
                   r.status().ToString().c_str());
      return 1;
    }
    baseline[q] = r->run_stats.latency_seconds;
    baseline_job_ids[r->job_id] = static_cast<uint64_t>(q);
  }

  // Analyze and select the top-10 overlapping computations (Sec 7.2).
  auto analysis = cv.RunAnalyzerAndLoad();

  // Job coordination (Sec 6.5): run builder queries first.
  std::vector<int> order;
  for (uint64_t job_id : analysis.submission_order) {
    auto it = baseline_job_ids.find(job_id);
    if (it != baseline_job_ids.end()) {
      order.push_back(static_cast<int>(it->second));
    }
  }

  std::map<int, double> with_cv;
  int built = 0, reused = 0;
  for (int q : order) {
    auto r = cv.Submit(tpcds::MakeQueryJob(q), true);
    if (!r.ok()) {
      std::fprintf(stderr, "q%d (cv) failed: %s\n", q,
                   r.status().ToString().c_str());
      return 1;
    }
    with_cv[q] = r->run_stats.latency_seconds;
    built += r->views_materialized;
    reused += r->views_reused > 0 ? 1 : 0;
  }

  TablePrinter table({"query", "baseline (ms)", "cloudviews (ms)",
                      "improvement %"});
  int improved = 0;
  double improvement_sum = 0, base_total = 0, cv_total = 0;
  double best = -1e9, worst = 1e9;
  for (int q = 1; q <= tpcds::kNumQueries; ++q) {
    double b = baseline[q] * 1000;
    double w = with_cv[q] * 1000;
    double pct = PctImprovement(b, w);
    improvement_sum += pct;
    base_total += b;
    cv_total += w;
    if (pct > 0) ++improved;
    best = std::max(best, pct);
    worst = std::min(worst, pct);
    table.AddRow({StrFormat("q%d", q), StrFormat("%.2f", b),
                  StrFormat("%.2f", w), StrFormat("%+.1f", pct)});
  }
  table.Print(std::cout);

  std::printf("\nsummary (views selected: %zu, built: %d, queries reusing: "
              "%d)\n",
              analysis.annotations.size(), built, reused);
  PaperVsMeasured("queries improved", "79 / 99",
                  StrFormat("%d / 99", improved));
  PaperVsMeasured(
      "average runtime improvement", "12.5%",
      StrFormat("%.1f%%", improvement_sum / tpcds::kNumQueries));
  PaperVsMeasured("total workload improvement", "17%",
                  StrFormat("%.1f%%", PctImprovement(base_total, cv_total)));
  PaperVsMeasured("peak improvement / slowdown", "~62% / ~-62%",
                  StrFormat("%+.0f%% / %+.0f%%", best, worst));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
