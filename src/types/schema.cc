#include "types/schema.h"

namespace cloudviews {

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Schema::HashInto(HashBuilder* hb) const {
  hb->Add(static_cast<uint64_t>(fields_.size()));
  for (const auto& f : fields_) {
    hb->Add(std::string_view(f.name));
    hb->Add(static_cast<int>(f.type));
  }
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

int64_t Schema::EstimatedRowWidth() const {
  int64_t w = 0;
  for (const auto& f : fields_) w += DataTypeWidth(f.type);
  return w;
}

}  // namespace cloudviews
