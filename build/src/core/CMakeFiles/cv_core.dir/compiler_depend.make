# Empty compiler generated dependencies file for cv_core.
# This may be replaced when dependencies are built.
