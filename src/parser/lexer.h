#ifndef CLOUDVIEWS_PARSER_LEXER_H_
#define CLOUDVIEWS_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace cloudviews {

enum class TokenType : int {
  kIdent,      // foo (also keywords; the parser matches case-insensitively)
  kInt,        // 123
  kFloat,      // 1.5
  kString,     // "text"
  kParam,      // @name
  kSymbol,     // ( ) , ; : = == != < <= > >= + - * / % .
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;  // identifier name, literal text, or symbol spelling
  int line = 1;

  bool Is(TokenType t) const { return type == t; }
  bool IsSymbol(const std::string& s) const {
    return type == TokenType::kSymbol && text == s;
  }
  /// Case-insensitive keyword match on identifiers.
  bool IsKeyword(const std::string& upper) const;
};

/// \brief Tokenizes ScopeScript text. `--` starts a line comment.
Result<std::vector<Token>> Tokenize(const std::string& text);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_PARSER_LEXER_H_
