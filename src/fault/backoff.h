#ifndef CLOUDVIEWS_FAULT_BACKOFF_H_
#define CLOUDVIEWS_FAULT_BACKOFF_H_

#include <functional>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cloudviews {
namespace fault {

/// \brief Capped exponential backoff for transient storage/metadata errors.
///
/// Attempt k (1-based) sleeps `initial_backoff_seconds * multiplier^(k-1)`
/// (capped at `max_backoff_seconds`) before attempt k+1. The schedule is a
/// pure function of the policy — no jitter — so a retried run is
/// reproducible and tests can assert the exact sleep sequence.
struct RetryPolicy {
  /// Total attempts, including the first. <= 1 means no retries.
  int max_attempts = 3;
  double initial_backoff_seconds = 0.0005;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.010;
};

/// \brief Injectable sleep, so retry loops never call sleep_for directly
/// (repo_lint enforces this) and tests run at full speed.
class Sleeper {
 public:
  virtual ~Sleeper() = default;
  virtual void Sleep(double seconds) = 0;

  /// Process-wide sleeper backed by the real clock.
  static Sleeper* Real();
};

/// Test sleeper: records the requested durations and returns immediately.
class RecordingSleeper : public Sleeper {
 public:
  void Sleep(double seconds) override EXCLUDES(mu_) {
    MutexLock lock(mu_);
    sleeps_.push_back(seconds);
  }
  std::vector<double> sleeps() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return sleeps_;
  }

 private:
  mutable Mutex mu_;
  std::vector<double> sleeps_ GUARDED_BY(mu_);
};

/// \brief Runs `fn` up to `policy.max_attempts` times, sleeping the backoff
/// schedule between attempts. Returns the first OK status, or the last
/// error once attempts are exhausted. A null `sleeper` means Sleeper::Real().
///
/// Every failure is retried: callers wrap only operations whose failures
/// may be transient (storage reads/writes, metadata lookups). The retry
/// count (attempts beyond the first) is reported through `retries` when
/// non-null.
Status RetryWithBackoff(const RetryPolicy& policy,
                        const std::function<Status()>& fn,
                        Sleeper* sleeper = nullptr,
                        int* retries = nullptr);

}  // namespace fault
}  // namespace cloudviews

#endif  // CLOUDVIEWS_FAULT_BACKOFF_H_
