// A week in the life of a recurring data pipeline (the workload shape that
// motivated CloudViews, Sec 1.2-1.3): daily instances over new data, an
// always-online service with no offline window, view expiry/purging, and
// automatic invalidation when the workload changes.
#include <cstdio>

#include "common/string_util.h"
#include "core/cloudviews.h"
#include "workload/production_workload.h"

using namespace cloudviews;

int main() {
  CloudViewsConfig config;
  config.analyzer.selection.top_k = 3;
  config.analyzer.selection.min_frequency = 3;
  config.analyzer.selection.min_cost_fraction_of_job = 0.2;
  config.analyzer.selection.max_per_job = 1;
  CloudViews cv(config);

  ProductionWorkload::Options options;
  options.rows_per_input = 8000;
  ProductionWorkload workload(options);

  double baseline_day_latency = 0;
  std::printf("%-12s %-10s %-9s %-8s %-8s %-10s %s\n", "day", "latency",
              "vs day1", "built", "reused", "views", "note");

  for (int day = 1; day <= 7; ++day) {
    std::string date = StrFormat("2018-01-%02d", day);
    workload.WriteInputs(cv.storage(), date);

    double total_latency = 0;
    int built = 0, reused = 0;
    for (const auto& def : workload.Instance(date)) {
      auto r = cv.Submit(def);  // CloudViews always on; day 1 simply has
                                // no annotations loaded yet
      if (!r.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", def.template_id.c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
      total_latency += r->run_stats.latency_seconds;
      built += r->views_materialized;
      reused += r->views_reused;
    }
    if (day == 1) baseline_day_latency = total_latency;

    const char* note = "";
    if (day == 1) {
      // The service is always online: analysis runs on history, not in an
      // offline window (Sec 6.2).
      cv.RunAnalyzerAndLoad();
      note = "analyzer run after the day's jobs";
    }
    // Daily housekeeping: advance a day, purge expired views (Sec 5.4).
    cv.clock()->AdvanceSeconds(kSecondsPerDay);
    size_t purged = cv.PurgeExpired();
    std::string note_full = note;
    if (purged > 0) {
      note_full += StrFormat("%spurged %zu expired view(s)",
                             note_full.empty() ? "" : "; ", purged);
    }
    std::printf("%-12s %7.1fms %+8.1f%% %-8d %-8d %-10zu %s\n", date.c_str(),
                total_latency * 1000,
                100.0 * (baseline_day_latency - total_latency) /
                    baseline_day_latency,
                built, reused, cv.metadata()->NumRegisteredViews(),
                note_full.c_str());
  }

  std::printf("\nworkload change detection: %s\n",
              cv.AnalysisLooksStale()
                  ? "analysis is stale, schedule a re-run"
                  : "signatures still matching, no re-analysis needed");
  return 0;
}
