#include "common/string_util.h"
#include "plan/plan_builder.h"
#include "tpcds/tpcds.h"

namespace cloudviews {
namespace tpcds {

namespace {

struct ChannelInfo {
  const char* table;
  const char* date_col;
  const char* item_col;
  const char* customer_col;
  const char* store_col;  // nullptr when the channel has no store
  const char* promo_col;
  const char* qty_col;
  const char* price_col;
  const char* profit_col;
  Schema (*schema)();
};

const ChannelInfo kChannels[3] = {
    {"store_sales", "ss_sold_date_sk", "ss_item_sk", "ss_customer_sk",
     "ss_store_sk", "ss_promo_sk", "ss_quantity", "ss_sales_price",
     "ss_net_profit", &StoreSalesSchema},
    {"web_sales", "ws_sold_date_sk", "ws_item_sk", "ws_customer_sk", nullptr,
     "ws_promo_sk", "ws_quantity", "ws_sales_price", "ws_net_profit",
     &WebSalesSchema},
    {"catalog_sales", "cs_sold_date_sk", "cs_item_sk", "cs_customer_sk",
     nullptr, "cs_promo_sk", "cs_quantity", "cs_sales_price",
     "cs_net_profit", &CatalogSalesSchema},
};

PlanBuilder ExtractTable(const char* table, Schema schema) {
  std::string stream = TableStream(table);
  // TPC-DS is a one-shot benchmark: the template is the concrete name.
  return PlanBuilder::Extract(stream, stream, "guid-" + stream,
                              std::move(schema));
}

/// Deterministic per-query shape; crafted so the channel x year base
/// prefixes repeat across many queries (the Fig 13 overlap structure).
struct QuerySpec {
  int channel;
  int64_t year;
  bool month_in_base;
  int64_t moy;
  bool join_item;
  bool join_customer;
  bool join_store;
  bool join_promo;
  int group_mode;  // 0 i_category, 1 i_brand, 2 c_state, 3 s_state,
                   // 4 d_moy, 5 global, 6 p_channel
  int agg_set;
  int tail;
};

QuerySpec SpecFor(int q) {
  QuerySpec s;
  int r = q % 9;
  s.channel = r <= 3 || r == 8 ? 0 : (r <= 5 ? 1 : 2);
  s.year = 1999 + ((q / 3) % 2);
  s.month_in_base = q % 7 == 3;
  s.moy = 1 + q % 12;
  s.group_mode = q % 7;
  // Store-channel-only grouping falls back to category elsewhere.
  if (s.group_mode == 3 && s.channel != 0) s.group_mode = 0;
  s.join_item = s.group_mode <= 1 || q % 2 == 0;
  s.join_customer = s.group_mode == 2 || q % 5 == 0;
  s.join_store = s.group_mode == 3;
  s.join_promo = s.group_mode == 6;
  s.agg_set = q % 3;
  s.tail = q % 4;
  return s;
}

}  // namespace

PlanNodePtr BuildQuery(int q) {
  QuerySpec spec = SpecFor(q);
  const ChannelInfo& ch = kChannels[spec.channel];

  // Shared base: sales joined with the year slice of date_dim. This exact
  // prefix recurs across dozens of queries.
  auto dates = ExtractTable("date_dim", DateDimSchema())
                   .Filter(Eq(Col("d_year"), Lit(spec.year)));
  PlanBuilder base = ExtractTable(ch.table, ch.schema())
                         .Join(std::move(dates), JoinType::kInner,
                               {{ch.date_col, "d_date_sk"}});
  if (spec.month_in_base) {
    base = std::move(base).Filter(Eq(Col("d_moy"), Lit(spec.moy)));
  }

  if (spec.join_item) {
    base = std::move(base).Join(ExtractTable("item", ItemSchema()),
                                JoinType::kInner,
                                {{ch.item_col, "i_item_sk"}});
  }
  if (spec.join_customer) {
    base = std::move(base).Join(ExtractTable("customer", CustomerSchema()),
                                JoinType::kInner,
                                {{ch.customer_col, "c_customer_sk"}});
  }
  if (spec.join_store && ch.store_col != nullptr) {
    base = std::move(base).Join(ExtractTable("store", StoreSchema()),
                                JoinType::kInner,
                                {{ch.store_col, "s_store_sk"}});
  }
  if (spec.join_promo) {
    base = std::move(base).Join(ExtractTable("promotion", PromotionSchema()),
                                JoinType::kInner,
                                {{ch.promo_col, "p_promo_sk"}});
  }

  static const char* kGroupCols[] = {"i_category", "i_brand", "c_state",
                                     "s_state",    "d_moy",   "",
                                     "p_channel"};
  std::vector<std::string> group_keys;
  if (spec.group_mode != 5) {
    group_keys.push_back(kGroupCols[spec.group_mode]);
  }

  std::vector<AggregateSpec> aggs;
  std::string last_agg;
  switch (spec.agg_set) {
    case 0:
      aggs.push_back({AggFunc::kCount, nullptr, "n"});
      aggs.push_back({AggFunc::kSum, Col(ch.price_col), "total_sales"});
      last_agg = "total_sales";
      break;
    case 1:
      aggs.push_back({AggFunc::kSum, Col(ch.profit_col), "total_profit"});
      aggs.push_back({AggFunc::kAvg, Col(ch.price_col), "avg_price"});
      last_agg = "avg_price";
      break;
    default:
      aggs.push_back({AggFunc::kCount, nullptr, "n"});
      aggs.push_back({AggFunc::kSum, Col(ch.qty_col), "total_qty"});
      aggs.push_back({AggFunc::kMax, Col(ch.price_col), "max_price"});
      last_agg = "max_price";
      break;
  }
  PlanBuilder result = std::move(base).Aggregate(group_keys, std::move(aggs));

  switch (spec.tail) {
    case 0:
      result = std::move(result)
                   .Sort({{last_agg, false}})
                   .Top(100);
      break;
    case 1:
      if (!group_keys.empty()) {
        result = std::move(result).Sort({{group_keys[0], true}});
      }
      break;
    case 2:
      result = std::move(result)
                   .Filter(Gt(Col(last_agg), Lit(static_cast<double>(q))));
      break;
    default:
      break;
  }
  return std::move(result).Output(StrFormat("tpcds_q%d_out", q)).Build();
}

JobDefinition MakeQueryJob(int q) {
  JobDefinition def;
  def.template_id = StrFormat("tpcds_q%d", q);
  def.cluster = "tpcds";
  def.business_unit = "benchmark";
  def.vc = "tpcds-vc";
  def.user = StrFormat("analyst%d", q % 10);
  def.recurrence_period = kSecondsPerDay;
  def.logical_plan = BuildQuery(q);
  return def;
}

}  // namespace tpcds
}  // namespace cloudviews
