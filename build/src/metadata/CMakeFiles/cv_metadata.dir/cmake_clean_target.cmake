file(REMOVE_RECURSE
  "libcv_metadata.a"
)
