# Empty compiler generated dependencies file for cv_analyzer.
# This may be replaced when dependencies are built.
