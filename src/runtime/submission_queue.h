#ifndef CLOUDVIEWS_RUNTIME_SUBMISSION_QUEUE_H_
#define CLOUDVIEWS_RUNTIME_SUBMISSION_QUEUE_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "obs/metrics.h"

namespace cloudviews {

/// \brief Bounded work queue between the network front door and
/// JobService::SubmitJob.
///
/// This is the admission-control seam: TryEnqueue never blocks and never
/// grows past `capacity` — a full queue is reported to the caller, which
/// sheds the request with RETRY_AFTER instead of queuing unboundedly.
/// Tasks are arbitrary closures so the server can bundle "run the job,
/// send the response, release the admission token" into one unit whose
/// completion the queue can drain on shutdown.
///
/// Thread-safe. Workers are dedicated threads (not the shared ThreadPool):
/// job execution already fans out onto the pool internally, and a pool
/// task blocking on another pool task would deadlock a 1-core host.
class SubmissionQueue {
 public:
  struct Options {
    size_t capacity = 256;
    int workers = 4;
    /// Metric label; families are cv_submission_queue_*{queue=<name>}.
    std::string name = "default";
  };

  /// `metrics` may be null (no instrumentation). Workers start immediately.
  explicit SubmissionQueue(const Options& options,
                           obs::MetricsRegistry* metrics = nullptr);
  /// Shuts down (drains queued tasks first).
  ~SubmissionQueue();

  SubmissionQueue(const SubmissionQueue&) = delete;
  SubmissionQueue& operator=(const SubmissionQueue&) = delete;

  enum class Admit {
    kAdmitted = 0,
    /// Queue at capacity; the caller should shed with retry-after.
    kQueueFull = 1,
    /// Shutdown has begun; new work is refused.
    kShuttingDown = 2,
  };

  /// Enqueues without blocking; on kAdmitted the task will run exactly
  /// once on a worker thread (even if Shutdown starts first — shutdown
  /// drains, it does not drop).
  Admit TryEnqueue(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until every task admitted so far has finished running. New
  /// tasks may still be admitted while draining; they are included.
  void Drain() EXCLUDES(mu_);

  /// Refuses new work, drains everything already admitted, joins workers.
  /// Idempotent.
  void Shutdown() EXCLUDES(mu_);

  size_t depth() const EXCLUDES(mu_);
  /// Tasks admitted over the queue's lifetime.
  uint64_t admitted() const EXCLUDES(mu_);
  /// Tasks currently executing on a worker thread. depth() + running() is
  /// the admitted-but-unfinished backlog (during a drain the queue may be
  /// empty with work still in flight).
  size_t running() const EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  const size_t capacity_;

  mutable Mutex mu_;
  CondVar work_cv_;   // signals workers: task available or shutdown
  CondVar drain_cv_;  // signals Drain/Shutdown: queue empty + idle workers
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t running_ GUARDED_BY(mu_) = 0;
  uint64_t admitted_ GUARDED_BY(mu_) = 0;
  uint64_t finished_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;

  // Observability (null when constructed without a registry).
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Gauge* running_gauge_ = nullptr;
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Histogram* queue_wait_ = nullptr;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_RUNTIME_SUBMISSION_QUEUE_H_
