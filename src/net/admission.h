#ifndef CLOUDVIEWS_NET_ADMISSION_H_
#define CLOUDVIEWS_NET_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "common/mutex.h"
#include "fault/fault_injector.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace cloudviews {
namespace net {

class AdmissionController;

/// \brief RAII in-flight-cap token. Holding one means the owning
/// connection has a submission admitted but not yet responded to; the
/// destructor releases the slot on every path — response sent, connection
/// dropped mid-request, or queue rejection — so caps can never leak.
class AdmissionToken {
 public:
  AdmissionToken() = default;
  AdmissionToken(AdmissionToken&& other) noexcept
      : controller_(other.controller_), conn_id_(other.conn_id_) {
    other.controller_ = nullptr;
  }
  AdmissionToken& operator=(AdmissionToken&& other) noexcept;
  AdmissionToken(const AdmissionToken&) = delete;
  AdmissionToken& operator=(const AdmissionToken&) = delete;
  ~AdmissionToken() { Release(); }

  void Release();
  bool held() const { return controller_ != nullptr; }

 private:
  friend class AdmissionController;
  AdmissionToken(AdmissionController* controller, uint64_t conn_id)
      : controller_(controller), conn_id_(conn_id) {}

  AdmissionController* controller_ = nullptr;
  uint64_t conn_id_ = 0;
};

/// \brief Per-connection in-flight caps + drain gate + shed accounting.
///
/// Sits in front of the SubmissionQueue: Acquire enforces everything the
/// queue cannot see (which connection is asking, whether the server is
/// draining, injected front-door faults); the queue itself enforces the
/// global bound. Every shed path is a typed reason so the RETRY_AFTER
/// response and the metrics agree.
class AdmissionController {
 public:
  struct Options {
    int per_connection_inflight_cap = 8;
    uint32_t retry_after_ms = 25;
  };

  /// `fault` and `metrics` may be null.
  AdmissionController(const Options& options, fault::FaultInjector* fault,
                      obs::MetricsRegistry* metrics);

  struct AcquireResult {
    bool admitted = false;
    /// Valid when !admitted.
    ShedReason reason = ShedReason::kQueueFull;
    /// Valid when admitted; release happens via RAII.
    AdmissionToken token;
  };

  /// Tries to take an in-flight slot for `conn_id`. Checked in order:
  /// draining gate, injected fault (points::kNetQueueAdmit, keyed by the
  /// connection id), per-connection cap.
  AcquireResult Acquire(uint64_t conn_id) EXCLUDES(mu_);

  /// Counts a shed that happened past Acquire (queue full / draining race)
  /// so stats cover every RETRY_AFTER actually sent.
  void RecordShed(ShedReason reason);

  /// Flips the drain gate: every later Acquire sheds with kDraining.
  void SetDraining() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  uint32_t retry_after_ms() const { return options_.retry_after_ms; }

  uint64_t shed_count(ShedReason reason) const;
  /// Admissions currently in flight (tokens held) across all connections.
  uint64_t inflight() const EXCLUDES(mu_);

 private:
  friend class AdmissionToken;
  void Release(uint64_t conn_id) EXCLUDES(mu_);

  const Options options_;
  fault::FaultInjector* const fault_;
  std::atomic<bool> draining_{false};

  mutable Mutex mu_;
  /// conn id -> submissions admitted but not yet released. Entries are
  /// erased at zero so a long-lived server does not accumulate dead ids.
  std::unordered_map<uint64_t, int> inflight_ GUARDED_BY(mu_);
  uint64_t total_inflight_ GUARDED_BY(mu_) = 0;

  std::atomic<uint64_t> shed_queue_full_{0};
  std::atomic<uint64_t> shed_conn_cap_{0};
  std::atomic<uint64_t> shed_draining_{0};
  std::atomic<uint64_t> shed_injected_{0};

  obs::Counter* shed_counter_queue_full_ = nullptr;
  obs::Counter* shed_counter_conn_cap_ = nullptr;
  obs::Counter* shed_counter_draining_ = nullptr;
  obs::Counter* shed_counter_injected_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
};

}  // namespace net
}  // namespace cloudviews

#endif  // CLOUDVIEWS_NET_ADMISSION_H_
