#ifndef CLOUDVIEWS_TYPES_BATCH_H_
#define CLOUDVIEWS_TYPES_BATCH_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/value.h"

namespace cloudviews {

/// \brief A single column of values (struct-of-arrays storage).
///
/// Bool and date payloads share storage with uint8/int64 respectively; the
/// type tag disambiguates. Nulls are tracked in an optional validity vector
/// (empty means all-valid), matching the common columnar-engine layout.
class Column {
 public:
  explicit Column(DataType type);

  DataType type() const { return type_; }
  size_t size() const;

  void Reserve(size_t n);
  void AppendBool(bool v);
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendNull();
  /// Appends any value; the value type must match (nulls always allowed).
  void AppendValue(const Value& v);
  /// Appends row i of other (same type) to this column.
  void AppendFrom(const Column& other, size_t i);
  /// Appends rows [begin, end) of other (same type) in bulk — the fast path
  /// morsel splitting and merging rely on.
  void AppendRangeFrom(const Column& other, size_t begin, size_t end);

  bool IsNull(size_t i) const {
    return !validity_.empty() && validity_[i] == 0;
  }
  bool HasNulls() const;

  /// Materializes element i as a Value (slow path; operators use the typed
  /// vectors below on hot paths).
  Value GetValue(size_t i) const;

  // Typed accessors; valid only when type() matches.
  const std::vector<uint8_t>& bool_data() const {
    return std::get<std::vector<uint8_t>>(data_);
  }
  const std::vector<int64_t>& int64_data() const {
    return std::get<std::vector<int64_t>>(data_);
  }
  const std::vector<double>& double_data() const {
    return std::get<std::vector<double>>(data_);
  }
  const std::vector<std::string>& string_data() const {
    return std::get<std::vector<std::string>>(data_);
  }

  /// Actual byte footprint of the payload (strings measured exactly).
  int64_t ByteSize() const;

 private:
  void MarkValid();

  DataType type_;
  std::variant<std::vector<uint8_t>, std::vector<int64_t>,
               std::vector<double>, std::vector<std::string>>
      data_;
  std::vector<uint8_t> validity_;  // empty => all valid
};

/// \brief A horizontal chunk of rows sharing a Schema.
class Batch {
 public:
  Batch() = default;
  explicit Batch(const Schema& schema);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const;
  bool empty() const { return num_rows() == 0; }

  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Appends a full row of values; count/types must match the schema.
  Status AppendRow(const std::vector<Value>& row);

  /// Appends row i of `other` (same schema) to this batch.
  void AppendRowFrom(const Batch& other, size_t i);

  /// Appends rows [begin, end) of `other` (same schema) in bulk.
  void AppendRowsFrom(const Batch& other, size_t begin, size_t end);

  /// Materializes row i (debug / test convenience).
  std::vector<Value> GetRow(size_t i) const;

  int64_t ByteSize() const;

  /// Multi-line "col=val, ..." rendering of up to limit rows.
  std::string ToString(size_t limit = 10) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_TYPES_BATCH_H_
