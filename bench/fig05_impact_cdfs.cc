// Reproduces Figure 5: cumulative distributions of overlapping-computation
// frequency, runtime, output size, and view-to-query cost ratio.
#include <cstdio>
#include <iostream>

#include "analyzer/overlap_analyzer.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace cloudviews {
namespace bench {
namespace {

int Run() {
  FigureHeader(
      "Figure 5", "Impact of overlap (business unit)",
      "frequency heavily skewed (avg 4.2, median 2, p95 14, p99 36); 26% of "
      "overlaps run <= 1s; 35% of outputs < 0.1MB; 46% of overlaps have "
      "view-to-query cost ratio <= 0.01, only 23% > 0.1, 4% > 0.5");

  ClusterRun run = RunClusterInstance(BusinessUnitProfile(), "2018-01-01");
  OverlapAnalyzer overlap;
  overlap.AddJobs(run.cv->repository()->Jobs());
  OverlapReport report = overlap.BuildReport();

  DistributionSummary freq, runtime, size, ratio;
  freq.AddAll(report.frequencies);
  runtime.AddAll(report.runtimes_seconds);
  size.AddAll(report.sizes_bytes);
  ratio.AddAll(report.view_query_cost_ratios);

  std::printf("\nFig 5(a): frequency CDF (n=%zu)\n", freq.count());
  TablePrinter ta({"frequency", "fraction <= x"});
  for (double x : {2.0, 3.0, 5.0, 10.0, 50.0, 100.0}) {
    ta.AddRow(StrFormat("%.0f", x), {freq.CdfAt(x)}, 3);
  }
  ta.Print(std::cout);

  std::printf("\nFig 5(b): runtime CDF (seconds, n=%zu)\n", runtime.count());
  TablePrinter tb({"seconds", "fraction <= x"});
  for (double x : {0.0001, 0.001, 0.01, 0.1, 1.0}) {
    tb.AddRow(StrFormat("%g", x), {runtime.CdfAt(x)}, 3);
  }
  tb.Print(std::cout);

  std::printf("\nFig 5(c): output size CDF (bytes, n=%zu)\n", size.count());
  TablePrinter tc({"bytes", "fraction <= x"});
  for (double x : {100.0, 1e3, 1e4, 1e5, 1e6, 1e7}) {
    tc.AddRow(HumanBytes(x), {size.CdfAt(x)}, 3);
  }
  tc.Print(std::cout);

  std::printf("\nFig 5(d): view-to-query cost ratio CDF (n=%zu)\n",
              ratio.count());
  TablePrinter td({"ratio", "fraction <= x"});
  for (double x : {0.01, 0.1, 0.2, 0.5, 0.8, 1.0}) {
    td.AddRow(StrFormat("%.2f", x), {ratio.CdfAt(x)}, 3);
  }
  td.Print(std::cout);

  std::printf("\nsummary\n");
  PaperVsMeasured("frequency: median / p95", "2 / 14",
                  StrFormat("%.0f / %.0f", freq.Median(),
                            freq.Percentile(95)));
  PaperVsMeasured("frequency skew (mean > median)", "4.2 > 2",
                  StrFormat("%.1f > %.0f", freq.Mean(), freq.Median()));
  // The engine runs ~1000x smaller data than production SCOPE; 1ms here
  // plays the role of the paper's 1s prune threshold.
  PaperVsMeasured("cheap overlaps (prunable)", "26% <= 1s",
                  StrFormat("%.0f%% <= 1ms", 100 * runtime.CdfAt(0.001)));
  PaperVsMeasured("ratio <= 0.01", "46%",
                  StrFormat("%.0f%%", 100 * ratio.CdfAt(0.01)));
  PaperVsMeasured("ratio > 0.1", "23%",
                  StrFormat("%.0f%%", 100 * (1 - ratio.CdfAt(0.1))));
  PaperVsMeasured("ratio > 0.5", "4%",
                  StrFormat("%.0f%%", 100 * (1 - ratio.CdfAt(0.5))));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
