/// End-to-end front-door tests over real sockets: wire submissions must be
/// byte-identical to in-process SubmitJob on an identically seeded twin
/// instance, concurrent clients must all complete, overload must shed with
/// RETRY_AFTER and retried sheds must eventually succeed, and Stop() must
/// drain everything admitted while refusing new work.

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/outcome.h"
#include "net/wire.h"
#include "parser/parser.h"
#include "tests/net_test_util.h"

namespace cloudviews {
namespace net {
namespace {

using testing_util::NetScript;
using testing_util::NetSubmit;
using testing_util::ServerFixture;
using testing_util::StartServerFixture;
using testing_util::WaitUntil;
using testing_util::WriteClickStream;

/// Builds the same JobDefinition the server builds from `req`, against
/// `cv`'s catalog — the in-process half of the byte-identity comparison.
JobDefinition InProcessDef(CloudViews* cv, const SubmitRequest& req) {
  ParamMap params;
  for (const WireParam& p : req.params) {
    switch (p.kind) {
      case WireParamKind::kDate:
        params[p.name] = DateParam(p.text);
        break;
      case WireParamKind::kInt:
        params[p.name] = IntParam(p.int_value);
        break;
      case WireParamKind::kString:
        params[p.name] = StringParam(p.text);
        break;
    }
  }
  StorageManager* storage = cv->storage();
  ScopeScriptParser parser;
  auto plan =
      parser.Parse(req.script, params, [storage](const std::string& name) {
        auto handle = storage->OpenStream(name);
        return handle.ok() ? (*handle)->guid : std::string();
      });
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  JobDefinition def;
  def.logical_plan = std::move(*plan);
  def.template_id = req.template_id;
  def.cluster = req.cluster;
  def.business_unit = req.business_unit;
  def.vc = req.vc;
  def.user = req.user;
  def.recurring_instance = static_cast<int>(req.recurring_instance);
  def.recurrence_period = static_cast<LogicalTime>(req.recurrence_period_seconds);
  def.tags = req.tags;
  return def;
}

TEST(NetE2E, WireOutcomeByteIdenticalToInProcess) {
  // Twin universes: one behind the socket server, one driven in-process.
  // Identical seeds, identical submission order; the wire must add
  // transport, never semantics.
  ServerFixture wire = StartServerFixture();
  CloudViewsConfig twin_config;
  twin_config.net.submission_workers = 1;
  CloudViews twin(twin_config);
  const std::vector<std::string> dates = {"2024-01-01", "2024-01-02"};
  for (size_t i = 0; i < dates.size(); ++i) {
    WriteClickStream(twin.storage(), "clicks_" + dates[i], 512,
                     /*seed=*/77 + i, dates[i]);
  }
  auto client = Client::Connect("127.0.0.1", wire.port);
  ASSERT_TRUE(client.ok());

  // Day 1 (cold), two templates sharing the cooked subplan; then the
  // analyzer; then day 2 (materialize + reuse). Every step is compared.
  struct Step {
    const char* tmpl;
    const char* tag;
    const char* date;
    int instance;
    bool analyze_first;
  };
  const Step steps[] = {
      {"tmpl-A", "a", "2024-01-01", 1, false},
      {"tmpl-B", "b", "2024-01-01", 1, false},
      {"tmpl-A", "a", "2024-01-02", 2, true},
      {"tmpl-B", "b", "2024-01-02", 2, false},
  };
  for (const Step& step : steps) {
    if (step.analyze_first) {
      wire.cv->RunAnalyzerAndLoad();
      twin.RunAnalyzerAndLoad();
    }
    SubmitRequest req =
        NetSubmit(step.tmpl, step.tag, step.date, step.instance);
    auto reply = client->Submit(req);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->kind, Client::SubmitReply::Kind::kResult)
        << "step " << step.tmpl << "/" << step.date;

    auto in_process = twin.Submit(InProcessDef(&twin, req));
    ASSERT_TRUE(in_process.ok()) << in_process.status().ToString();
    JobOutcome twin_outcome =
        OutcomeFromJobResult(*in_process, twin.storage());

    EXPECT_EQ(EncodeJobOutcome(reply->result.outcome),
              EncodeJobOutcome(twin_outcome))
        << "wire and in-process outcomes diverged at " << step.tmpl << "/"
        << step.date;
    EXPECT_GT(reply->result.outcome.output_rows, 0);
    EXPECT_NE(reply->result.outcome.output_fingerprint.hi |
                  reply->result.outcome.output_fingerprint.lo,
              0u)
        << "output fingerprint missing — outcome not actually read back";
  }
  ServerStatsResponse stats = wire.server->Stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(NetE2E, ConcurrentClientsAllComplete) {
  ServerFixture fx = StartServerFixture(
      [](CloudViewsConfig* config) { config->net.submission_workers = 2; });
  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 5;
  std::atomic<int> failures{0};
  Mutex ids_mu;
  std::vector<uint64_t> job_ids;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", fx.port);
      if (!client.ok()) {
        failures.fetch_add(kJobsPerThread);
        return;
      }
      for (int i = 0; i < kJobsPerThread; ++i) {
        SubmitRequest req =
            NetSubmit("tmpl-c" + std::to_string(t),
                      "c" + std::to_string(t) + "_" + std::to_string(i),
                      "2024-01-01", i + 1);
        fault::RetryPolicy policy;
        policy.max_attempts = 50;
        auto reply = client->SubmitWithRetry(req, policy);
        if (!reply.ok() ||
            reply->kind != Client::SubmitReply::Kind::kResult ||
            reply->result.outcome.output_rows <= 0) {
          failures.fetch_add(1);
          continue;
        }
        MutexLock lock(ids_mu);
        job_ids.push_back(reply->result.outcome.job_id);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_EQ(job_ids.size(),
            static_cast<size_t>(kThreads * kJobsPerThread));
  std::set<uint64_t> unique(job_ids.begin(), job_ids.end());
  EXPECT_EQ(unique.size(), job_ids.size()) << "job ids must be distinct";
  ServerStatsResponse stats = fx.server->Stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kThreads * kJobsPerThread));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(NetE2E, OverloadShedsTypedAndRetriedShedsSucceed) {
  // A deliberately tiny service: one worker, one queue slot, two in-flight
  // per connection. An async flood must shed (bounded memory), and every
  // shed submission retried must eventually land. Zero failed jobs.
  ServerFixture fx = StartServerFixture([](CloudViewsConfig* config) {
    config->net.submission_workers = 1;
    config->net.submission_queue_capacity = 1;
    config->net.per_connection_inflight_cap = 2;
    config->net.retry_after_ms = 1;
  });
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());

  constexpr int kJobs = 24;
  fault::RetryPolicy policy;
  policy.max_attempts = 100000;  // retry until the queue drains
  policy.initial_backoff_seconds = 0;
  policy.max_backoff_seconds = 0;
  fault::RecordingSleeper no_sleep;  // spin instead of sleeping
  std::vector<uint64_t> tickets;
  int total_retries = 0;
  for (int i = 0; i < kJobs; ++i) {
    SubmitRequest req =
        NetSubmit("tmpl-flood", "f" + std::to_string(i), "2024-01-01", i + 1);
    req.wait = false;
    int retries = 0;
    auto reply = client->SubmitWithRetry(req, policy, &no_sleep, &retries);
    total_retries += retries;
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->kind, Client::SubmitReply::Kind::kAccepted)
        << "submission " << i << " never admitted";
    tickets.push_back(reply->accepted.ticket);
  }
  // The flood outran one worker with one queue slot: sheds must have
  // happened, and every one of them was retried into an admission.
  ServerStatsResponse stats = fx.server->Stats();
  EXPECT_GT(stats.shed_queue_full + stats.shed_conn_cap, 0u);
  EXPECT_GT(total_retries, 0);
  EXPECT_EQ(stats.accepted, static_cast<uint64_t>(kJobs));

  ASSERT_TRUE(WaitUntil([&fx] {
    ServerStatsResponse s = fx.server->Stats();
    return s.completed + s.failed == kJobs;
  }));
  stats = fx.server->Stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(stats.failed, 0u) << "overload must shed, never fail jobs";
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  // And every admitted ticket reports done over the wire.
  for (uint64_t ticket : tickets) {
    auto status = client->QueryStatus(ticket);
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(status->state, WireJobState::kDone);
    EXPECT_GT(status->outcome.output_rows, 0);
  }
}

TEST(NetE2E, AsyncTicketLifecycleAndProfile) {
  ServerFixture fx = StartServerFixture();
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  SubmitRequest req = NetSubmit("tmpl-async", "as", "2024-01-01", 1);
  req.wait = false;
  auto reply = client->Submit(req);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->kind, Client::SubmitReply::Kind::kAccepted);
  uint64_t ticket = reply->accepted.ticket;
  ASSERT_GT(ticket, 0u);

  ASSERT_TRUE(WaitUntil([&client, ticket] {
    auto status = client->QueryStatus(ticket);
    return status.ok() && status->state == WireJobState::kDone;
  }));
  auto status = client->QueryStatus(ticket);
  ASSERT_TRUE(status.ok());
  EXPECT_GT(status->outcome.output_rows, 0);
  EXPECT_GT(status->outcome.job_id, 0u);

  // The stored profile is the request's span tree with the job nested
  // inside — front door and runtime in one trace.
  auto profile = client->FetchProfile(ticket);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->ticket, ticket);
  EXPECT_NE(profile->profile_json.find("net.request"), std::string::npos);
  EXPECT_NE(profile->profile_json.find("job"), std::string::npos);
}

TEST(NetE2E, StopDrainsAdmittedWorkAndRefusesNew) {
  ServerFixture fx = StartServerFixture([](CloudViewsConfig* config) {
    config->net.submission_workers = 1;
    config->net.submission_queue_capacity = 64;
    config->net.per_connection_inflight_cap = 64;
  });
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  // Queue up a backlog of async jobs so the drain window is wide.
  constexpr int kBacklog = 12;
  for (int i = 0; i < kBacklog; ++i) {
    SubmitRequest req =
        NetSubmit("tmpl-drain", "d" + std::to_string(i), "2024-01-01", i + 1);
    req.wait = false;
    auto reply = client->Submit(req);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->kind, Client::SubmitReply::Kind::kAccepted);
  }
  uint64_t admitted = fx.server->Stats().accepted;
  ASSERT_EQ(admitted, static_cast<uint64_t>(kBacklog));

  // Stop in the background; submissions racing the drain must be refused
  // with a typed kDraining RETRY_AFTER (or a closed connection once the
  // teardown reaches the sockets) — never silently queued.
  std::thread stopper([&fx] { fx.server->Stop(); });
  int draining_sheds = 0;
  for (int i = 0; i < 10000; ++i) {
    SubmitRequest req = NetSubmit("tmpl-drain", "late", "2024-01-01", 99);
    req.wait = false;
    auto reply = client->Submit(req);
    if (!reply.ok()) break;  // sockets torn down: refusal by close
    if (reply->kind == Client::SubmitReply::Kind::kRetryAfter) {
      EXPECT_EQ(reply->retry.reason, ShedReason::kDraining);
      ++draining_sheds;
    } else if (reply->kind == Client::SubmitReply::Kind::kAccepted) {
      // This submit raced ahead of the drain gate flipping — legitimately
      // admitted, so Stop() owes it completion like the rest.
      ++admitted;
    } else {
      ADD_FAILURE() << "unexpected reply kind during drain";
      break;
    }
  }
  stopper.join();
  EXPECT_GE(draining_sheds, 1);

  // Everything admitted before the drain ran to completion.
  ServerStatsResponse stats = fx.server->Stats();
  EXPECT_EQ(stats.completed, admitted);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_GE(stats.shed_draining, 1u);

  // And the front door is closed: new connections are refused outright, or
  // die before a round-trip completes.
  auto late = Client::Connect("127.0.0.1", fx.port);
  if (late.ok()) {
    EXPECT_FALSE(late->ServerStats().ok());
  }
}

}  // namespace
}  // namespace net
}  // namespace cloudviews
