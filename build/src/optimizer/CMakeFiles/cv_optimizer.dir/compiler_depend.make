# Empty compiler generated dependencies file for cv_optimizer.
# This may be replaced when dependencies are built.
