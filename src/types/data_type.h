#ifndef CLOUDVIEWS_TYPES_DATA_TYPE_H_
#define CLOUDVIEWS_TYPES_DATA_TYPE_H_

#include <string>

namespace cloudviews {

/// \brief Scalar types supported by the engine.
///
/// kDate is stored as days since 1970-01-01; recurring-job template
/// parameters are typically date literals (Sec 3), so dates are first-class
/// for signature normalization.
enum class DataType : int {
  kBool = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kDate = 4,
};

const char* DataTypeToString(DataType t);

/// Parses "int", "long", "double", "string", "bool", "date" (ScopeScript
/// spellings). Returns false for unknown names.
bool DataTypeFromString(const std::string& name, DataType* out);

/// Fixed width in bytes used for size accounting; strings use an estimate
/// that the storage layer refines with actual lengths.
int DataTypeWidth(DataType t);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_TYPES_DATA_TYPE_H_
