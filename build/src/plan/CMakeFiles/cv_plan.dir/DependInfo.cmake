
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/physical_properties.cc" "src/plan/CMakeFiles/cv_plan.dir/physical_properties.cc.o" "gcc" "src/plan/CMakeFiles/cv_plan.dir/physical_properties.cc.o.d"
  "/root/repo/src/plan/plan_builder.cc" "src/plan/CMakeFiles/cv_plan.dir/plan_builder.cc.o" "gcc" "src/plan/CMakeFiles/cv_plan.dir/plan_builder.cc.o.d"
  "/root/repo/src/plan/plan_node.cc" "src/plan/CMakeFiles/cv_plan.dir/plan_node.cc.o" "gcc" "src/plan/CMakeFiles/cv_plan.dir/plan_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/cv_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/cv_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
