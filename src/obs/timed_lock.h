#ifndef CLOUDVIEWS_OBS_TIMED_LOCK_H_
#define CLOUDVIEWS_OBS_TIMED_LOCK_H_

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace cloudviews {
namespace obs {

/// \brief MutexLock that feeds the acquisition wait into a histogram.
///
/// Drop-in replacement for MutexLock on contended paths whose wait time is
/// a signal worth exporting (e.g. the metadata service's build-lock
/// mutex). With a null histogram it degenerates to a plain MutexLock —
/// no clock reads.
class SCOPED_CAPABILITY TimedMutexLock {
 public:
  TimedMutexLock(Mutex& mu, Histogram* wait_hist, MonotonicClock* clock)
      ACQUIRE(mu)
      : mu_(mu) {
    if (wait_hist != nullptr) {
      double start = clock->NowSeconds();
      mu_.Lock();
      wait_hist->Observe(clock->NowSeconds() - start);
    } else {
      mu_.Lock();
    }
  }
  ~TimedMutexLock() RELEASE() { mu_.Unlock(); }

  TimedMutexLock(const TimedMutexLock&) = delete;
  TimedMutexLock& operator=(const TimedMutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_TIMED_LOCK_H_
