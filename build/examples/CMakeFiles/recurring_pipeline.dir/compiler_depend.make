# Empty compiler generated dependencies file for recurring_pipeline.
# This may be replaced when dependencies are built.
