#include "common/random.h"

#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace cloudviews {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four state words with splitmix64 of the user seed; all-zero
  // state is impossible since Mix64 is a bijection applied to distinct
  // inputs.
  uint64_t z = seed;
  for (auto& s : s_) {
    z += 0x9e3779b97f4a7c15ULL;
    s = Mix64(z);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Gaussian(double mean, double stddev) {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

std::string Rng::Identifier(size_t len) {
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return s;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  double r = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

ZipfGenerator::ZipfGenerator(size_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

size_t ZipfGenerator::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  // Binary search for the first CDF entry >= u.
  size_t lo = 0, hi = n_ - 1;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace cloudviews
