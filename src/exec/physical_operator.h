#ifndef CLOUDVIEWS_EXEC_PHYSICAL_OPERATOR_H_
#define CLOUDVIEWS_EXEC_PHYSICAL_OPERATOR_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "exec/morsel.h"
#include "plan/plan_node.h"

namespace cloudviews {

/// \brief Per-operator slice of the execution environment handed to every
/// PhysicalOperator callback.
struct OperatorContext {
  ExecContext* exec = nullptr;
  /// Null means single-threaded: morsels run inline in index order.
  ThreadPool* pool = nullptr;
  size_t morsel_rows = 4096;
  /// Operator-wide CPU accounting; the driver sums per-thread CPU deltas of
  /// Open/PreparePhase/ProcessMorsel/Close here from whichever worker ran
  /// them.
  CpuAccumulator* cpu = nullptr;
};

/// \brief One physical operator of the morsel-driven engine: one subclass
/// per OpKind.
///
/// Lifecycle driven by the executor:
///
///   Open(inputs)                      — bind to materialized child outputs
///   for phase in [0, num_phases):
///     PreparePhase(phase)             — sequential phase setup
///     ProcessMorsel(phase, m) ∀ m     — parallel across morsels of a phase
///   Close()                           — deterministic merge, emit output
///
/// ProcessMorsel calls of one phase run concurrently (distinct m) and must
/// only touch morsel-m state; everything else runs on a single thread.
/// Determinism contract: parallel phases only *precompute* (evaluate
/// expressions, hash keys, sort runs, compare rows); any order-sensitive
/// accumulation (aggregate state updates, hash-table build, output
/// concatenation) happens in global row order in a sequential step, so
/// results are byte-identical to the single-threaded engine for every
/// worker count and morsel size.
class PhysicalOperator {
 public:
  explicit PhysicalOperator(PlanNode* node) : node_(node) {}
  virtual ~PhysicalOperator() = default;

  PlanNode* node() const { return node_; }

  /// Takes ownership of the children's outputs, one MorselSet per child.
  virtual Status Open(OperatorContext& ctx, std::vector<MorselSet> inputs) {
    (void)ctx;
    inputs_ = std::move(inputs);
    return Status::OK();
  }

  virtual size_t num_phases() const { return 1; }

  /// Sequential setup before a phase's morsels run (e.g. hash-table build
  /// between the key-hashing and probe phases of a join).
  virtual Status PreparePhase(OperatorContext& ctx, size_t phase) {
    (void)ctx;
    (void)phase;
    return Status::OK();
  }

  virtual size_t NumMorsels(size_t phase) const {
    (void)phase;
    return 0;
  }

  virtual Status ProcessMorsel(OperatorContext& ctx, size_t phase,
                               size_t morsel) {
    (void)ctx;
    (void)phase;
    (void)morsel;
    return Status::OK();
  }

  /// Deterministic merge/finalize; returns the operator's output morsels.
  virtual Result<MorselSet> Close(OperatorContext& ctx) = 0;

 protected:
  /// Schema of child i's output; falls back to the plan-declared schema
  /// when the child produced no morsels (empty input).
  const Schema& InputSchema(size_t i) const {
    return inputs_[i].empty() ? node_->child(i)->output_schema()
                              : inputs_[i][0].schema();
  }

  PlanNode* node_;
  std::vector<MorselSet> inputs_;
};

/// Builds the physical operator for a plan node.
Result<std::unique_ptr<PhysicalOperator>> MakePhysicalOperator(PlanNode* node);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_EXEC_PHYSICAL_OPERATOR_H_
