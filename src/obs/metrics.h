#ifndef CLOUDVIEWS_OBS_METRICS_H_
#define CLOUDVIEWS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cloudviews {
namespace obs {

/// Label set of one time series, e.g. {{"stage", "optimize"}}. Stored
/// sorted by key; a registry lookup sorts its argument so call sites may
/// pass labels in any order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonically increasing event count. Mutation is one relaxed
/// atomic add — safe and cheap from any executor thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Point-in-time level (queue depth, busy workers, registered
/// views). Set/Add are lock-free.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // CAS loop: atomic<double>::fetch_add is C++20-library-dependent.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// RAII +1/-1 on a gauge — tracks how many threads are inside a region
/// (active jobs, in-flight requests). No-op with a null gauge.
class ScopedGaugeIncrement {
 public:
  explicit ScopedGaugeIncrement(Gauge* gauge) : gauge_(gauge) {
    if (gauge_ != nullptr) gauge_->Add(1);
  }
  ~ScopedGaugeIncrement() {
    if (gauge_ != nullptr) gauge_->Add(-1);
  }
  ScopedGaugeIncrement(const ScopedGaugeIncrement&) = delete;
  ScopedGaugeIncrement& operator=(const ScopedGaugeIncrement&) = delete;

 private:
  Gauge* gauge_;
};

/// Exponential bucket layout: bucket i covers values <= first_bound *
/// growth^i; one extra overflow bucket catches everything larger. The
/// defaults span 1us .. ~18min in powers of two — wide enough for every
/// duration this repo records under one layout, which keeps exposition
/// output mergeable across series.
struct HistogramOptions {
  double first_bound = 1e-6;
  double growth = 2.0;
  int num_buckets = 30;
};

/// \brief Fixed-bucket histogram; Observe is bucket-search plus two relaxed
/// atomic adds (no locks), so it can sit on executor hot paths.
class Histogram {
 public:
  explicit Histogram(HistogramOptions opts = {});

  void Observe(double value);

  /// Upper bounds of the finite buckets (the overflow bucket is +Inf).
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One series in a snapshot: resolved labels plus either a scalar value or
/// the histogram state.
struct SeriesSnapshot {
  Labels labels;
  double value = 0;  // counter / gauge
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;
  double sum = 0;
};

/// All series of one metric name.
struct FamilySnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  std::string help;
  std::vector<SeriesSnapshot> series;
};

/// \brief Thread-safe registry of named instruments.
///
/// Registration (GetCounter/GetGauge/GetHistogram) takes a short
/// shard-level lock; callers register once and cache the returned pointer,
/// after which every mutation is lock-free on the instrument itself.
/// Instruments live until the registry is destroyed, so cached pointers
/// never dangle. Asking for an existing name with a different instrument
/// type aborts — that is a programming error, not a runtime condition.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, Labels labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, Labels labels = {},
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, Labels labels = {},
                          HistogramOptions opts = {},
                          const std::string& help = "");

  /// Consistent-enough view for exporters: families sorted by name, series
  /// sorted by label set, so rendered output is deterministic for a
  /// deterministic workload.
  std::vector<FamilySnapshot> Snapshot() const;

 private:
  struct Instrument {
    MetricType type;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Shard {
    mutable Mutex mu;
    /// name -> label-key -> instrument; map keeps snapshot order stable.
    std::map<std::string, std::map<std::string, Instrument>> metrics
        GUARDED_BY(mu);
  };

  Instrument* Register(const std::string& name, Labels* labels,
                       MetricType type, const std::string& help,
                       const HistogramOptions* opts);
  Shard& ShardFor(const std::string& name);

  static constexpr size_t kShards = 16;
  std::array<Shard, kShards> shards_;
};

/// Serializes sorted labels into the canonical key / exposition form
/// `key="value",...` (empty string for no labels). Values are escaped per
/// the Prometheus text format.
std::string RenderLabels(const Labels& labels);

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_METRICS_H_
