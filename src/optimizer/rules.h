#ifndef CLOUDVIEWS_OPTIMIZER_RULES_H_
#define CLOUDVIEWS_OPTIMIZER_RULES_H_

#include "plan/plan_node.h"

namespace cloudviews {

/// \brief Logical rewrite rules applied before physical planning.
///
/// All rules are deterministic, so recurring instances of the same template
/// always produce identical plans — a prerequisite for signature matching.
/// The returned tree is unbound; the caller re-binds.

/// Pushes Filter nodes as close to the leaves as possible: below
/// Sort / Exchange / Top-less pass-through operators, through Project when
/// the predicate references only pass-through columns (with renaming), and
/// into the matching side(s) of a Join / both sides of a UnionAll.
PlanNodePtr PushDownFilters(PlanNodePtr root);

/// Merges stacked Filter nodes into a single conjunctive predicate.
PlanNodePtr MergeAdjacentFilters(PlanNodePtr root);

/// Removes Exchange / Sort enforcers whose input already delivers the
/// properties they would establish (requires a bound tree).
PlanNodePtr RemoveRedundantEnforcers(PlanNodePtr root);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_OPTIMIZER_RULES_H_
