#include "net/admission.h"

#include <string>

namespace cloudviews {
namespace net {

AdmissionToken& AdmissionToken::operator=(AdmissionToken&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    conn_id_ = other.conn_id_;
    other.controller_ = nullptr;
  }
  return *this;
}

void AdmissionToken::Release() {
  if (controller_ != nullptr) {
    controller_->Release(conn_id_);
    controller_ = nullptr;
  }
}

AdmissionController::AdmissionController(const Options& options,
                                         fault::FaultInjector* fault,
                                         obs::MetricsRegistry* metrics)
    : options_(options), fault_(fault) {
  if (metrics != nullptr) {
    auto shed = [metrics](const char* reason) {
      return metrics->GetCounter("cv_net_shed_total",
                                 {{"reason", reason}},
                                 "Submissions shed with RETRY_AFTER");
    };
    shed_counter_queue_full_ = shed("queue_full");
    shed_counter_conn_cap_ = shed("conn_cap");
    shed_counter_draining_ = shed("draining");
    shed_counter_injected_ = shed("injected");
    inflight_gauge_ = metrics->GetGauge(
        "cv_net_inflight", {}, "Admitted submissions awaiting a response");
  }
}

AdmissionController::AcquireResult AdmissionController::Acquire(
    uint64_t conn_id) {
  AcquireResult result;
  if (draining()) {
    result.reason = ShedReason::kDraining;
    RecordShed(result.reason);
    return result;
  }
  if (fault_ != nullptr) {
    Status injected = fault_->MaybeInject(fault::points::kNetQueueAdmit,
                                          std::to_string(conn_id));
    if (!injected.ok()) {
      result.reason = ShedReason::kInjected;
      RecordShed(result.reason);
      return result;
    }
  }
  {
    MutexLock lock(mu_);
    int& count = inflight_[conn_id];
    if (count >= options_.per_connection_inflight_cap) {
      if (count == 0) inflight_.erase(conn_id);
      result.reason = ShedReason::kConnCap;
    } else {
      ++count;
      ++total_inflight_;
      result.admitted = true;
      result.token = AdmissionToken(this, conn_id);
      if (inflight_gauge_ != nullptr) {
        inflight_gauge_->Set(static_cast<double>(total_inflight_));
      }
    }
  }
  if (!result.admitted) RecordShed(result.reason);
  return result;
}

void AdmissionController::RecordShed(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      if (shed_counter_queue_full_ != nullptr) {
        shed_counter_queue_full_->Increment();
      }
      break;
    case ShedReason::kConnCap:
      shed_conn_cap_.fetch_add(1, std::memory_order_relaxed);
      if (shed_counter_conn_cap_ != nullptr) {
        shed_counter_conn_cap_->Increment();
      }
      break;
    case ShedReason::kDraining:
      shed_draining_.fetch_add(1, std::memory_order_relaxed);
      if (shed_counter_draining_ != nullptr) {
        shed_counter_draining_->Increment();
      }
      break;
    case ShedReason::kInjected:
      shed_injected_.fetch_add(1, std::memory_order_relaxed);
      if (shed_counter_injected_ != nullptr) {
        shed_counter_injected_->Increment();
      }
      break;
  }
}

uint64_t AdmissionController::shed_count(ShedReason reason) const {
  switch (reason) {
    case ShedReason::kQueueFull:
      return shed_queue_full_.load(std::memory_order_relaxed);
    case ShedReason::kConnCap:
      return shed_conn_cap_.load(std::memory_order_relaxed);
    case ShedReason::kDraining:
      return shed_draining_.load(std::memory_order_relaxed);
    case ShedReason::kInjected:
      return shed_injected_.load(std::memory_order_relaxed);
  }
  return 0;
}

uint64_t AdmissionController::inflight() const {
  MutexLock lock(mu_);
  return total_inflight_;
}

void AdmissionController::Release(uint64_t conn_id) {
  MutexLock lock(mu_);
  auto it = inflight_.find(conn_id);
  if (it == inflight_.end()) return;
  if (--it->second <= 0) inflight_.erase(it);
  --total_inflight_;
  if (inflight_gauge_ != nullptr) {
    inflight_gauge_->Set(static_cast<double>(total_inflight_));
  }
}

}  // namespace net
}  // namespace cloudviews
