#include "obs/export.h"

#include <cstdio>

namespace cloudviews {
namespace obs {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string FormatValue(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// `name{labels[,extra]} value\n`
void EmitLine(std::string* out, const std::string& name,
              const std::string& labels, const std::string& extra,
              const std::string& value) {
  *out += name;
  if (!labels.empty() || !extra.empty()) {
    *out += '{';
    *out += labels;
    if (!labels.empty() && !extra.empty()) *out += ',';
    *out += extra;
    *out += '}';
  }
  *out += ' ';
  *out += value;
  *out += '\n';
}

}  // namespace

std::string RenderPrometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const FamilySnapshot& fam : registry.Snapshot()) {
    if (!fam.help.empty()) {
      out += "# HELP " + fam.name + " " + fam.help + "\n";
    }
    out += "# TYPE " + fam.name + " " + TypeName(fam.type) + "\n";
    for (const SeriesSnapshot& series : fam.series) {
      std::string labels = RenderLabels(series.labels);
      switch (fam.type) {
        case MetricType::kCounter:
        case MetricType::kGauge:
          EmitLine(&out, fam.name, labels, "", FormatValue(series.value));
          break;
        case MetricType::kHistogram: {
          // Prometheus buckets are cumulative.
          uint64_t cumulative = 0;
          for (size_t i = 0; i < series.bounds.size(); ++i) {
            cumulative += series.bucket_counts[i];
            EmitLine(&out, fam.name + "_bucket", labels,
                     "le=\"" + FormatValue(series.bounds[i]) + "\"",
                     std::to_string(cumulative));
          }
          cumulative += series.bucket_counts.back();
          EmitLine(&out, fam.name + "_bucket", labels, "le=\"+Inf\"",
                   std::to_string(cumulative));
          EmitLine(&out, fam.name + "_sum", labels, "",
                   FormatValue(series.sum));
          EmitLine(&out, fam.name + "_count", labels, "",
                   std::to_string(series.count));
          break;
        }
      }
    }
  }
  return out;
}

std::string RenderMetricsJson(const MetricsRegistry& registry) {
  JsonWriter w;
  w.BeginObject();
  for (const FamilySnapshot& fam : registry.Snapshot()) {
    w.Key(fam.name).BeginObject();
    w.Key("type").String(TypeName(fam.type));
    w.Key("series").BeginArray();
    for (const SeriesSnapshot& series : fam.series) {
      w.BeginObject();
      if (!series.labels.empty()) {
        w.Key("labels").BeginObject();
        for (const auto& [k, v] : series.labels) w.Key(k).String(v);
        w.EndObject();
      }
      switch (fam.type) {
        case MetricType::kCounter:
        case MetricType::kGauge:
          w.Key("value").Double(series.value);
          break;
        case MetricType::kHistogram:
          w.Key("count").Uint(series.count);
          w.Key("sum").Double(series.sum);
          w.Key("mean").Double(
              series.count > 0
                  ? series.sum / static_cast<double>(series.count)
                  : 0);
          w.Key("bounds").BeginArray();
          for (double b : series.bounds) w.Double(b);
          w.EndArray();
          w.Key("bucket_counts").BeginArray();
          for (uint64_t c : series.bucket_counts) w.Uint(c);
          w.EndArray();
          break;
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  return w.Take();
}

void SpanToJson(const SpanRecord& span, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("name").String(span.name);
  writer->Key("start_seconds").Double(span.start_seconds);
  writer->Key("end_seconds").Double(span.end_seconds);
  writer->Key("duration_seconds")
      .Double(span.end_seconds - span.start_seconds);
  if (!span.attributes.empty()) {
    writer->Key("attributes").BeginObject();
    for (const auto& [k, v] : span.attributes) writer->Key(k).String(v);
    writer->EndObject();
  }
  if (!span.children.empty()) {
    writer->Key("children").BeginArray();
    for (const auto& child : span.children) SpanToJson(*child, writer);
    writer->EndArray();
  }
  writer->EndObject();
}

}  // namespace obs
}  // namespace cloudviews
