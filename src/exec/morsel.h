#ifndef CLOUDVIEWS_EXEC_MORSEL_H_
#define CLOUDVIEWS_EXEC_MORSEL_H_

#include <cstdint>
#include <vector>

#include "types/batch.h"

namespace cloudviews {

/// \brief The unit of data flow between physical operators: an ordered
/// sequence of row chunks.
///
/// Concatenated in order, the morsels of a set are exactly the operator's
/// output batch; the decomposition depends only on the data and
/// `ExecOptions::morsel_rows`, never on the worker count, so every
/// schedule produces identical results.
using MorselSet = std::vector<Batch>;

size_t MorselRowCount(const MorselSet& morsels);
int64_t MorselByteSize(const MorselSet& morsels);

/// One planned morsel: rows [begin, end) of source batch `batch`.
struct MorselSlice {
  size_t batch = 0;
  size_t begin = 0;
  size_t end = 0;
};

/// Cuts a sequence of batches into morsels of at most `morsel_rows` rows;
/// empty batches yield no slices.
std::vector<MorselSlice> PlanMorselSlices(const std::vector<Batch>& batches,
                                          size_t morsel_rows);

/// Copies rows [begin, end) of src into a fresh batch (bulk column copy).
Batch MaterializeSlice(const Batch& src, size_t begin, size_t end);

/// Splits one batch into a morsel set; a batch already within the limit is
/// moved through without copying.
MorselSet ChunkBatch(Batch data, size_t morsel_rows);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_EXEC_MORSEL_H_
