file(REMOVE_RECURSE
  "libcv_workload.a"
)
