# CMake generated Testfile for 
# Source directory: /root/repo/src/signature
# Build directory: /root/repo/build/src/signature
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
