// Reproduces Figure 2: per-virtual-cluster percentage of overlapping jobs
// (2a) and average overlap frequency (2b) in the largest cluster.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "analyzer/overlap_analyzer.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace cloudviews {
namespace bench {
namespace {

int Run() {
  FigureHeader(
      "Figure 2", "Overlap across virtual clusters in the largest cluster",
      "some VCs have 0% overlap, 54% of VCs have >50% jobs overlapping, a "
      "few have 100%; avg overlap frequency 1.5..112, median ~2.96");

  ClusterRun run = RunClusterInstance(LargestClusterProfile(), "2018-01-01");
  OverlapAnalyzer overlap;
  overlap.AddJobs(run.cv->repository()->Jobs());
  OverlapReport report = overlap.BuildReport();

  // 2(a): per-VC percentage overlap, sorted ascending like the figure.
  std::vector<double> pct_overlap;
  DistributionSummary freq_summary;
  size_t vcs_over_50 = 0, vcs_zero = 0, vcs_full = 0;
  for (const auto& [vc, entry] : report.per_vc) {
    double pct = entry.jobs
                     ? 100.0 * static_cast<double>(entry.overlapping_jobs) /
                           static_cast<double>(entry.jobs)
                     : 0;
    pct_overlap.push_back(pct);
    if (pct > 50) ++vcs_over_50;
    if (pct == 0) ++vcs_zero;
    if (pct >= 100) ++vcs_full;
    if (entry.avg_overlap_frequency > 0) {
      freq_summary.Add(entry.avg_overlap_frequency);
    }
  }
  std::sort(pct_overlap.begin(), pct_overlap.end());

  std::printf("\nFig 2(a) series: %% jobs overlapping per VC (sorted)\n");
  TablePrinter series_a({"vc rank", "% overlap"});
  for (size_t i = 0; i < pct_overlap.size();
       i += std::max<size_t>(1, pct_overlap.size() / 16)) {
    series_a.AddRow(StrFormat("%zu", i), {pct_overlap[i]}, 1);
  }
  series_a.AddRow(StrFormat("%zu", pct_overlap.size() - 1),
                  {pct_overlap.back()}, 1);
  series_a.Print(std::cout);

  std::printf("\nFig 2(b) series: average overlap frequency per VC\n");
  std::printf("  %s\n", freq_summary.ToString().c_str());

  std::printf("\nsummary\n");
  PaperVsMeasured("total VCs", "~160",
                  StrFormat("%zu", report.per_vc.size()));
  PaperVsMeasured(
      "VCs with >50% jobs overlapping", "54%",
      StrFormat("%.1f%%", 100.0 * static_cast<double>(vcs_over_50) /
                              static_cast<double>(report.per_vc.size())));
  PaperVsMeasured("VCs with zero overlap", "some",
                  StrFormat("%zu", vcs_zero));
  PaperVsMeasured("VCs with 100% overlap", "few",
                  StrFormat("%zu", vcs_full));
  PaperVsMeasured("avg overlap frequency median", "2.96",
                  StrFormat("%.2f", freq_summary.Median()));
  PaperVsMeasured("avg overlap frequency p75 / p95", "3.82 / 7.1",
                  StrFormat("%.2f / %.2f", freq_summary.Percentile(75),
                            freq_summary.Percentile(95)));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
