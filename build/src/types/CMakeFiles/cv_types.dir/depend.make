# Empty dependencies file for cv_types.
# This may be replaced when dependencies are built.
