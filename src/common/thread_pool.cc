#include "common/thread_pool.h"

#include <ctime>

namespace cloudviews {

double ThreadCpuSeconds() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

bool ThreadPool::RunOne() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskGroup::Spawn(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  pool_->Enqueue([this, fn = std::move(fn)] {
    fn();
    // Decrement and notify under the lock: the waiter may destroy this
    // group the moment it observes pending_ == 0.
    MutexLock lock(mu_);
    if (--pending_ == 0) done_cv_.NotifyAll();
  });
}

void TaskGroup::Wait() {
  if (pool_ == nullptr) return;
  for (;;) {
    {
      MutexLock lock(mu_);
      if (pending_ == 0) return;
    }
    if (!pool_->RunOne()) {
      // Queue momentarily empty: our remaining tasks are running on other
      // threads. The short timeout re-polls the queue in case a nested
      // group enqueued more work we could help with; Wait's caller loop
      // re-checks pending_ after any wakeup.
      MutexLock lock(mu_);
      if (pending_ == 0) return;
      done_cv_.WaitFor(mu_, std::chrono::milliseconds(1));
      if (pending_ == 0) return;
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || n < 2) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  TaskGroup group(pool);
  for (size_t i = 0; i < n; ++i) {
    group.Spawn([&fn, i] { fn(i); });
  }
  group.Wait();
}

}  // namespace cloudviews
