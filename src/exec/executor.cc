#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <numeric>
#include <unordered_map>

#include "common/guid.h"
#include "common/string_util.h"
#include "exec/processor_registry.h"

namespace cloudviews {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// CPU seconds consumed by the calling thread; the honest basis for the
/// paper's "CPU hours" resource accounting (wall time inflates under
/// thread oversubscription).
double ThreadCpuSeconds() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// 128-bit key of the given columns of one row (used by hash join, hash
/// aggregate, and hash partitioning).
Hash128 RowKey(const Batch& batch, size_t row, const std::vector<int>& cols) {
  HashBuilder hb;
  for (int c : cols) {
    batch.column(static_cast<size_t>(c)).GetValue(row).HashInto(&hb);
  }
  return hb.Finish();
}

Result<std::vector<int>> ResolveColumns(const Schema& schema,
                                        const std::vector<std::string>& names) {
  std::vector<int> idx;
  idx.reserve(names.size());
  for (const auto& n : names) {
    int i = schema.FieldIndex(n);
    if (i < 0) {
      return Status::Internal("executor: column '" + n + "' not found");
    }
    idx.push_back(i);
  }
  return idx;
}

/// Row comparator over sort keys; nulls first, per-key direction.
struct RowComparator {
  const Batch* batch;
  std::vector<int> cols;
  std::vector<bool> ascending;

  bool operator()(size_t a, size_t b) const {
    for (size_t k = 0; k < cols.size(); ++k) {
      const Column& c = batch->column(static_cast<size_t>(cols[k]));
      int cmp = c.GetValue(a).Compare(c.GetValue(b));
      if (cmp != 0) return ascending[k] ? cmp < 0 : cmp > 0;
    }
    return false;
  }
};

Batch GatherRows(const Batch& src, const std::vector<size_t>& rows) {
  Batch out(src.schema());
  for (size_t r : rows) out.AppendRowFrom(src, r);
  return out;
}

}  // namespace

Batch CombineBatches(const Schema& schema,
                     const std::vector<Batch>& batches) {
  Batch out(schema);
  for (const auto& b : batches) {
    for (size_t r = 0; r < b.num_rows(); ++r) out.AppendRowFrom(b, r);
  }
  return out;
}

Batch SortBatch(const Batch& data, const std::vector<SortKey>& keys) {
  RowComparator cmp;
  cmp.batch = &data;
  for (const auto& k : keys) {
    int i = data.schema().FieldIndex(k.column);
    if (i < 0) continue;  // unknown keys are skipped (validated at bind)
    cmp.cols.push_back(i);
    cmp.ascending.push_back(k.ascending);
  }
  std::vector<size_t> order(data.num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), cmp);
  return GatherRows(data, order);
}

Result<std::vector<Batch>> PartitionBatch(const Batch& data,
                                          const Partitioning& partitioning) {
  int count = partitioning.partition_count > 0 ? partitioning.partition_count
                                               : 1;
  std::vector<Batch> parts;
  parts.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) parts.emplace_back(data.schema());

  switch (partitioning.scheme) {
    case PartitionScheme::kAny:
    case PartitionScheme::kSingleton: {
      parts[0] = data;
      return parts;
    }
    case PartitionScheme::kRoundRobin: {
      for (size_t r = 0; r < data.num_rows(); ++r) {
        parts[r % static_cast<size_t>(count)].AppendRowFrom(data, r);
      }
      return parts;
    }
    case PartitionScheme::kHash: {
      CV_ASSIGN_OR_RETURN(std::vector<int> cols,
                          ResolveColumns(data.schema(),
                                         partitioning.columns));
      for (size_t r = 0; r < data.num_rows(); ++r) {
        uint64_t h = RowKey(data, r, cols).lo;
        parts[h % static_cast<uint64_t>(count)].AppendRowFrom(data, r);
      }
      return parts;
    }
    case PartitionScheme::kRange: {
      // Approximate range partitioning: sort on the partition columns and
      // cut into equal-sized runs.
      std::vector<SortKey> keys;
      for (const auto& c : partitioning.columns) keys.push_back({c, true});
      Batch sorted = SortBatch(data, keys);
      size_t per = (sorted.num_rows() + static_cast<size_t>(count) - 1) /
                   static_cast<size_t>(count);
      if (per == 0) per = 1;
      for (size_t r = 0; r < sorted.num_rows(); ++r) {
        parts[std::min(r / per, static_cast<size_t>(count) - 1)]
            .AppendRowFrom(sorted, r);
      }
      return parts;
    }
  }
  return Status::Internal("unknown partition scheme");
}

Result<JobRunStats> Executor::Execute(const PlanNodePtr& root) {
  if (!root->bound()) {
    return Status::InvalidArgument("plan must be bound before execution");
  }
  JobRunStats stats;
  auto start = Clock::now();
  CV_ASSIGN_OR_RETURN(NodeResult result, ExecuteNode(root.get(), &stats));
  stats.latency_seconds = SecondsSince(start);
  for (const auto& [id, op] : stats.operators) {
    stats.cpu_seconds += op.cpu_seconds;
  }
  stats.output_rows = static_cast<double>(result.data.num_rows());
  stats.output_bytes = static_cast<double>(result.data.ByteSize());
  return stats;
}

Result<Executor::NodeResult> Executor::ExecuteNode(PlanNode* node,
                                                   JobRunStats* stats) {
  // Execute children first, accumulating their inclusive latencies.
  std::vector<Batch> child_data;
  double children_seconds = 0;
  for (const auto& c : node->children()) {
    CV_ASSIGN_OR_RETURN(NodeResult r, ExecuteNode(c.get(), stats));
    children_seconds += r.inclusive_seconds;
    child_data.push_back(std::move(r.data));
  }

  auto start = Clock::now();
  double cpu_start = ThreadCpuSeconds();
  Batch out;

  switch (node->kind()) {
    case OpKind::kExtract: {
      auto* extract = static_cast<ExtractNode*>(node);
      CV_ASSIGN_OR_RETURN(StreamHandle stream,
                          ctx_.storage->OpenStream(extract->stream_name()));
      if (!(stream->schema == extract->output_schema())) {
        return Status::TypeError(
            "stream '" + extract->stream_name() +
            "' schema does not match EXTRACT declaration");
      }
      out = CombineBatches(stream->schema, stream->batches);
      break;
    }

    case OpKind::kViewRead: {
      auto* view = static_cast<ViewReadNode*>(node);
      CV_ASSIGN_OR_RETURN(StreamHandle stream,
                          ctx_.storage->OpenStream(view->view_path()));
      out = CombineBatches(stream->schema, stream->batches);
      // The view's partitions are each sorted per its design; the node
      // advertises that order, so restore it globally across partitions
      // (the k-way merge a distributed reader performs).
      if (stream->props.sort_order.IsSorted() && stream->batches.size() > 1) {
        out = SortBatch(out, stream->props.sort_order.keys);
      }
      break;
    }

    case OpKind::kFilter: {
      auto* filter = static_cast<FilterNode*>(node);
      const Batch& in = child_data[0];
      Column pred(DataType::kBool);
      CV_RETURN_NOT_OK(filter->predicate()->Evaluate(in, &pred));
      out = Batch(in.schema());
      for (size_t r = 0; r < in.num_rows(); ++r) {
        if (!pred.IsNull(r) && pred.bool_data()[r] != 0) {
          out.AppendRowFrom(in, r);
        }
      }
      break;
    }

    case OpKind::kProject: {
      auto* project = static_cast<ProjectNode*>(node);
      const Batch& in = child_data[0];
      out = Batch(node->output_schema());
      for (size_t e = 0; e < project->exprs().size(); ++e) {
        Column col(node->output_schema().field(e).type);
        CV_RETURN_NOT_OK(project->exprs()[e].expr->Evaluate(in, &col));
        out.column(e) = std::move(col);
      }
      break;
    }

    case OpKind::kJoin: {
      auto* join = static_cast<JoinNode*>(node);
      const Batch& left = child_data[0];
      const Batch& right = child_data[1];
      CV_ASSIGN_OR_RETURN(
          std::vector<int> lcols,
          ResolveColumns(left.schema(), join->LeftKeys()));
      CV_ASSIGN_OR_RETURN(
          std::vector<int> rcols,
          ResolveColumns(right.schema(), join->RightKeys()));
      out = Batch(node->output_schema());
      auto emit = [&](size_t lr, size_t rr) {
        size_t c = 0;
        for (size_t i = 0; i < left.num_columns(); ++i, ++c) {
          out.column(c).AppendFrom(left.column(i), lr);
        }
        for (size_t i = 0; i < right.num_columns(); ++i, ++c) {
          out.column(c).AppendFrom(right.column(i), rr);
        }
      };
      auto emit_left_only = [&](size_t lr) {
        size_t c = 0;
        for (size_t i = 0; i < left.num_columns(); ++i, ++c) {
          out.column(c).AppendFrom(left.column(i), lr);
        }
        for (size_t i = 0; i < right.num_columns(); ++i, ++c) {
          out.column(c).AppendNull();
        }
      };

      if (join->algorithm() == JoinAlgorithm::kMerge) {
        if (join->join_type() != JoinType::kInner) {
          return Status::Unimplemented("merge join supports INNER only");
        }
        // Inputs are sorted on the keys (enforced by the optimizer).
        size_t li = 0, ri = 0;
        auto key_cmp = [&](size_t lr, size_t rr) {
          for (size_t k = 0; k < lcols.size(); ++k) {
            int cmp = left.column(static_cast<size_t>(lcols[k]))
                          .GetValue(lr)
                          .Compare(right.column(static_cast<size_t>(rcols[k]))
                                       .GetValue(rr));
            if (cmp != 0) return cmp;
          }
          return 0;
        };
        while (li < left.num_rows() && ri < right.num_rows()) {
          int cmp = key_cmp(li, ri);
          if (cmp < 0) {
            ++li;
          } else if (cmp > 0) {
            ++ri;
          } else {
            // Duplicate groups on both sides.
            size_t lend = li + 1;
            while (lend < left.num_rows() && key_cmp(lend, ri) == 0) ++lend;
            size_t rend = ri + 1;
            while (rend < right.num_rows() && key_cmp(li, rend) == 0) ++rend;
            for (size_t a = li; a < lend; ++a) {
              for (size_t b = ri; b < rend; ++b) emit(a, b);
            }
            li = lend;
            ri = rend;
          }
        }
      } else {
        // Hash join: build on the right input, probe with the left.
        std::unordered_map<Hash128, std::vector<size_t>, Hash128Hasher>
            table;
        table.reserve(right.num_rows());
        for (size_t r = 0; r < right.num_rows(); ++r) {
          table[RowKey(right, r, rcols)].push_back(r);
        }
        for (size_t l = 0; l < left.num_rows(); ++l) {
          auto it = table.find(RowKey(left, l, lcols));
          if (it != table.end()) {
            for (size_t r : it->second) emit(l, r);
          } else if (join->join_type() == JoinType::kLeftOuter) {
            emit_left_only(l);
          }
        }
      }
      break;
    }

    case OpKind::kAggregate: {
      auto* agg = static_cast<AggregateNode*>(node);
      const Batch& in = child_data[0];
      CV_ASSIGN_OR_RETURN(
          std::vector<int> gcols,
          ResolveColumns(in.schema(), agg->group_keys()));

      // Pre-evaluate aggregate arguments over the whole input.
      std::vector<Column> arg_cols;
      for (const auto& spec : agg->aggregates()) {
        if (spec.arg) {
          Column col(spec.arg->output_type());
          CV_RETURN_NOT_OK(spec.arg->Evaluate(in, &col));
          arg_cols.push_back(std::move(col));
        } else {
          arg_cols.emplace_back(DataType::kInt64);  // placeholder
        }
      }

      struct Group {
        size_t first_row;
        std::vector<AggState> states;
      };
      auto make_states = [&]() {
        std::vector<AggState> states;
        for (const auto& spec : agg->aggregates()) {
          states.emplace_back(spec.func);
        }
        return states;
      };
      auto update_group = [&](Group* g, size_t row) {
        for (size_t a = 0; a < agg->aggregates().size(); ++a) {
          const auto& spec = agg->aggregates()[a];
          if (spec.arg) {
            g->states[a].Update(arg_cols[a].GetValue(row));
          } else {
            g->states[a].UpdateCountStar();
          }
        }
      };

      std::vector<Group> groups;
      if (agg->group_keys().empty()) {
        groups.push_back({0, make_states()});
        for (size_t r = 0; r < in.num_rows(); ++r) {
          update_group(&groups[0], r);
        }
      } else if (agg->algorithm() == AggAlgorithm::kStream) {
        // Input sorted on group keys: detect group boundaries.
        auto same_group = [&](size_t a, size_t b) {
          for (int c : gcols) {
            if (in.column(static_cast<size_t>(c))
                    .GetValue(a)
                    .Compare(in.column(static_cast<size_t>(c)).GetValue(b)) !=
                0) {
              return false;
            }
          }
          return true;
        };
        for (size_t r = 0; r < in.num_rows(); ++r) {
          if (groups.empty() || !same_group(groups.back().first_row, r)) {
            groups.push_back({r, make_states()});
          }
          update_group(&groups.back(), r);
        }
      } else {
        std::unordered_map<Hash128, size_t, Hash128Hasher> index;
        for (size_t r = 0; r < in.num_rows(); ++r) {
          Hash128 key = RowKey(in, r, gcols);
          auto [it, inserted] = index.emplace(key, groups.size());
          if (inserted) groups.push_back({r, make_states()});
          update_group(&groups[it->second], r);
        }
      }

      out = Batch(node->output_schema());
      // Empty input with group keys yields no rows; without keys it yields
      // the single global group (already created above).
      for (const auto& g : groups) {
        size_t c = 0;
        for (int gc : gcols) {
          out.column(c++).AppendFrom(in.column(static_cast<size_t>(gc)),
                                     g.first_row);
        }
        for (size_t a = 0; a < agg->aggregates().size(); ++a) {
          out.column(c).AppendValue(g.states[a].Finish(
              node->output_schema().field(c).type));
          ++c;
        }
      }
      break;
    }

    case OpKind::kSort: {
      auto* sort = static_cast<SortNode*>(node);
      out = SortBatch(child_data[0], sort->keys());
      break;
    }

    case OpKind::kExchange: {
      auto* exchange = static_cast<ExchangeNode*>(node);
      CV_ASSIGN_OR_RETURN(
          std::vector<Batch> parts,
          PartitionBatch(child_data[0], exchange->partitioning()));
      out = CombineBatches(child_data[0].schema(), parts);
      break;
    }

    case OpKind::kUnionAll: {
      out = Batch(node->output_schema());
      for (const auto& b : child_data) {
        for (size_t r = 0; r < b.num_rows(); ++r) out.AppendRowFrom(b, r);
      }
      break;
    }

    case OpKind::kProcess: {
      auto* process = static_cast<ProcessNode*>(node);
      CV_ASSIGN_OR_RETURN(
          const ProcessorFn* fn,
          ProcessorRegistry::Global()->Lookup(process->processor()));
      Batch result;
      CV_RETURN_NOT_OK((*fn)(child_data[0], &result));
      if (!(result.schema() == node->output_schema())) {
        return Status::TypeError("processor '" + process->processor() +
                                 "' produced schema [" +
                                 result.schema().ToString() +
                                 "], declared [" +
                                 node->output_schema().ToString() + "]");
      }
      out = std::move(result);
      break;
    }

    case OpKind::kTop: {
      auto* top = static_cast<TopNode*>(node);
      const Batch& in = child_data[0];
      out = Batch(in.schema());
      size_t n = std::min<size_t>(static_cast<size_t>(top->limit()),
                                  in.num_rows());
      for (size_t r = 0; r < n; ++r) out.AppendRowFrom(in, r);
      break;
    }

    case OpKind::kSpool: {
      auto* spool = static_cast<SpoolNode*>(node);
      const Batch& in = child_data[0];
      // Enforce the mined physical design on the stored copy.
      Batch designed = in;
      if (spool->design().sort_order.IsSorted()) {
        designed = SortBatch(designed, spool->design().sort_order.keys);
      }
      std::vector<Batch> stored;
      if (spool->design().partitioning.IsSpecified()) {
        CV_ASSIGN_OR_RETURN(
            stored, PartitionBatch(designed, spool->design().partitioning));
        // Partitioning loses the global sort; re-sort each partition.
        if (spool->design().sort_order.IsSorted()) {
          for (auto& p : stored) {
            p = SortBatch(p, spool->design().sort_order.keys);
          }
        }
      } else {
        stored.push_back(std::move(designed));
      }
      LogicalTime now = ctx_.storage->clock()->Now();
      LogicalTime expiry = spool->lifetime_seconds() > 0
                               ? now + spool->lifetime_seconds()
                               : ctx_.view_expiry;
      StreamData view = MakeStreamData(spool->view_path(), GenerateGuid(),
                                       in.schema(), std::move(stored), now,
                                       expiry, spool->design());
      CV_RETURN_NOT_OK(ctx_.storage->WriteStream(view));
      // Early materialization: publish before the job finishes (Sec 6.4).
      if (ctx_.on_view_materialized) {
        ctx_.on_view_materialized(*spool, view);
      }
      out = in;
      break;
    }

    case OpKind::kReduce: {
      auto* reduce = static_cast<ReduceNode*>(node);
      const Batch& in = child_data[0];
      CV_ASSIGN_OR_RETURN(std::vector<int> kcols,
                          ResolveColumns(in.schema(), reduce->keys()));
      CV_ASSIGN_OR_RETURN(
          const ProcessorFn* fn,
          ProcessorRegistry::Global()->Lookup(reduce->processor()));
      auto same_group = [&](size_t a, size_t b) {
        for (int c : kcols) {
          if (in.column(static_cast<size_t>(c))
                  .GetValue(a)
                  .Compare(in.column(static_cast<size_t>(c)).GetValue(b)) !=
              0) {
            return false;
          }
        }
        return true;
      };
      out = Batch(node->output_schema());
      size_t start = 0;
      while (start < in.num_rows()) {
        size_t end = start + 1;
        while (end < in.num_rows() && same_group(start, end)) ++end;
        Batch group(in.schema());
        for (size_t r = start; r < end; ++r) group.AppendRowFrom(in, r);
        Batch result;
        CV_RETURN_NOT_OK((*fn)(group, &result));
        if (!(result.schema() == node->output_schema())) {
          return Status::TypeError("reducer '" + reduce->processor() +
                                   "' produced schema [" +
                                   result.schema().ToString() +
                                   "], declared [" +
                                   node->output_schema().ToString() + "]");
        }
        for (size_t r = 0; r < result.num_rows(); ++r) {
          out.AppendRowFrom(result, r);
        }
        start = end;
      }
      break;
    }

    case OpKind::kOutput: {
      auto* output = static_cast<OutputNode*>(node);
      const Batch& in = child_data[0];
      // Record the physical layout the enforced design produced, so that
      // downstream consumer jobs (and the analyzer) see it.
      StreamData data = MakeStreamData(
          output->stream_name(), GenerateGuid(), in.schema(), {in},
          ctx_.storage->clock()->Now(), /*expires_at=*/0,
          node->children()[0]->Delivered());
      CV_RETURN_NOT_OK(ctx_.storage->WriteStream(std::move(data)));
      out = in;
      break;
    }
  }

  double own_seconds = SecondsSince(start);
  OperatorRuntimeStats op;
  op.node_id = node->id();
  op.kind = node->kind();
  op.rows = static_cast<double>(out.num_rows());
  op.bytes = static_cast<double>(out.ByteSize());
  op.exclusive_seconds = own_seconds;
  op.inclusive_seconds = own_seconds + children_seconds;
  op.cpu_seconds = ThreadCpuSeconds() - cpu_start;
  stats->operators[node->id()] = op;

  NodeResult result;
  result.data = std::move(out);
  result.inclusive_seconds = op.inclusive_seconds;
  return result;
}

}  // namespace cloudviews
