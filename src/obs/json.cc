#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace cloudviews {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": was already emitted with its comma handling
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace obs
}  // namespace cloudviews
