# Empty dependencies file for fig03_overlap_cdfs.
# This may be replaced when dependencies are built.
