#include "tools/token.h"

#include <cctype>

namespace cloudviews {
namespace lint {

namespace {

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Source with backslash-newline splices removed and a per-character map
/// back to the original 1-based line number. Splicing first means every
/// later stage (raw strings, comments, directives, identifiers split
/// across lines) sees logical lines, like a real phase-2 translator.
struct SplicedSource {
  std::string text;
  std::vector<int> line;  // line[i] = original line of text[i]
};

SplicedSource Splice(const std::string& content) {
  SplicedSource out;
  out.text.reserve(content.size());
  out.line.reserve(content.size());
  int line = 1;
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '\\') {
      size_t j = i + 1;
      if (j < content.size() && content[j] == '\r') ++j;
      if (j < content.size() && content[j] == '\n') {
        ++line;
        i = j;
        continue;
      }
    }
    out.text.push_back(c);
    out.line.push_back(line);
    if (c == '\n') ++line;
  }
  return out;
}

/// Multi-character punctuators, longest first within each length bucket.
const char* const kPunct3[] = {"<<=", ">>=", "<=>", "...", "->*"};
const char* const kPunct2[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                               "!=", "&&", "||", "+=", "-=", "*=", "/=",
                               "%=", "^=", "&=", "|=", "++", "--", "##",
                               ".*"};

/// Literal prefixes that may precede a quote. A trailing 'R' marks a raw
/// string.
bool IsLiteralPrefix(const std::string& id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" ||
         id == "LR" || id == "u8" || id == "u" || id == "U" || id == "L";
}

class Lexer {
 public:
  explicit Lexer(const SplicedSource& src) : src_(src) {}

  std::vector<Token> Run() {
    std::vector<Token> out;
    bool at_line_start = true;
    bool in_directive = false;
    while (pos_ < src_.text.size()) {
      char c = src_.text[pos_];
      if (c == '\n') {
        at_line_start = true;
        in_directive = false;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        out.push_back(Mark(LexLineComment(), in_directive));
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        out.push_back(Mark(LexBlockComment(), in_directive));
        continue;
      }
      if (c == '#' && at_line_start) {
        in_directive = true;
        out.push_back(Mark(LexDirectiveHead(), in_directive));
        at_line_start = false;
        continue;
      }
      at_line_start = false;
      if (c == '"') {
        out.push_back(Mark(LexString(pos_, /*raw=*/false), in_directive));
        continue;
      }
      if (c == '\'') {
        out.push_back(Mark(LexCharLit(pos_), in_directive));
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        out.push_back(Mark(LexNumber(), in_directive));
        continue;
      }
      if (IsIdentChar(c)) {
        out.push_back(Mark(LexIdentifierOrPrefixedLiteral(), in_directive));
        continue;
      }
      out.push_back(Mark(LexPunct(), in_directive));
    }
    return out;
  }

 private:
  static Token Mark(Token t, bool in_directive) {
    t.in_directive = in_directive;
    return t;
  }
  char Peek(size_t ahead) const {
    size_t p = pos_ + ahead;
    return p < src_.text.size() ? src_.text[p] : '\0';
  }
  int LineAt(size_t p) const {
    if (src_.line.empty()) return 1;
    if (p >= src_.line.size()) return src_.line.back();
    return src_.line[p];
  }
  Token Make(TokenKind kind, size_t start, size_t end) {
    Token t;
    t.kind = kind;
    t.text = src_.text.substr(start, end - start);
    t.line = LineAt(start);
    pos_ = end;
    return t;
  }

  Token LexLineComment() {
    size_t start = pos_;
    size_t end = src_.text.find('\n', pos_);
    if (end == std::string::npos) end = src_.text.size();
    return Make(TokenKind::kComment, start, end);
  }

  Token LexBlockComment() {
    size_t start = pos_;
    // Block comments do not nest: the first */ ends the comment.
    size_t end = src_.text.find("*/", pos_ + 2);
    end = end == std::string::npos ? src_.text.size() : end + 2;
    return Make(TokenKind::kComment, start, end);
  }

  /// `#` at logical-line start: emit `#name` (whitespace between # and the
  /// name is dropped) as one kPreprocessor token. The rest of the line is
  /// lexed as ordinary code so macro bodies are still scanned by rules.
  Token LexDirectiveHead() {
    size_t start = pos_;
    size_t p = pos_ + 1;
    while (p < src_.text.size() &&
           (src_.text[p] == ' ' || src_.text[p] == '\t')) {
      ++p;
    }
    size_t name_start = p;
    while (p < src_.text.size() && IsIdentChar(src_.text[p])) ++p;
    Token t;
    t.kind = TokenKind::kPreprocessor;
    t.text = "#" + src_.text.substr(name_start, p - name_start);
    t.line = LineAt(start);
    pos_ = p;
    return t;
  }

  Token LexString(size_t start, bool raw) {
    if (raw) return LexRawString(start);
    size_t p = pos_;
    while (p < src_.text.size() && src_.text[p] != '"') ++p;  // skip prefix
    ++p;                                                      // opening quote
    while (p < src_.text.size()) {
      char c = src_.text[p];
      if (c == '\\' && p + 1 < src_.text.size()) {
        p += 2;
        continue;
      }
      if (c == '"' || c == '\n') break;  // newline: unterminated, recover
      ++p;
    }
    if (p < src_.text.size() && src_.text[p] == '"') ++p;
    return Make(TokenKind::kString, start, p);
  }

  Token LexRawString(size_t start) {
    // pos_ is at the prefix; find the opening quote, then the delimiter.
    size_t p = pos_;
    while (p < src_.text.size() && src_.text[p] != '"') ++p;
    ++p;
    size_t delim_start = p;
    while (p < src_.text.size() && src_.text[p] != '(' &&
           src_.text[p] != '\n') {
      ++p;
    }
    std::string closer =
        ")" + src_.text.substr(delim_start, p - delim_start) + "\"";
    size_t end = src_.text.find(closer, p);
    end = end == std::string::npos ? src_.text.size() : end + closer.size();
    return Make(TokenKind::kString, start, end);
  }

  Token LexCharLit(size_t start) {
    size_t p = pos_;
    while (p < src_.text.size() && src_.text[p] != '\'') ++p;  // skip prefix
    ++p;
    while (p < src_.text.size()) {
      char c = src_.text[p];
      if (c == '\\' && p + 1 < src_.text.size()) {
        p += 2;
        continue;
      }
      if (c == '\'' || c == '\n') break;
      ++p;
    }
    if (p < src_.text.size() && src_.text[p] == '\'') ++p;
    return Make(TokenKind::kCharLit, start, p);
  }

  /// pp-number: digits, identifier chars, digit separators ('), '.', and
  /// sign characters directly after an exponent marker (e E p P).
  Token LexNumber() {
    size_t start = pos_;
    size_t p = pos_;
    while (p < src_.text.size()) {
      char c = src_.text[p];
      if (IsIdentChar(c) || c == '.') {
        ++p;
        continue;
      }
      if (c == '\'' && p + 1 < src_.text.size() &&
          IsIdentChar(src_.text[p + 1])) {
        p += 2;
        continue;
      }
      if ((c == '+' || c == '-') && p > start) {
        char prev = src_.text[p - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++p;
          continue;
        }
      }
      break;
    }
    return Make(TokenKind::kNumber, start, p);
  }

  Token LexIdentifierOrPrefixedLiteral() {
    size_t start = pos_;
    size_t p = pos_;
    while (p < src_.text.size() && IsIdentChar(src_.text[p])) ++p;
    std::string id = src_.text.substr(start, p - start);
    char next = p < src_.text.size() ? src_.text[p] : '\0';
    if (IsLiteralPrefix(id)) {
      bool is_raw = id.back() == 'R';
      if (next == '"') {
        pos_ = start;
        return LexString(start, is_raw);
      }
      if (next == '\'' && !is_raw) {
        pos_ = start;
        return LexCharLit(start);
      }
    }
    return Make(TokenKind::kIdentifier, start, p);
  }

  Token LexPunct() {
    size_t start = pos_;
    size_t remaining = src_.text.size() - pos_;
    if (remaining >= 3) {
      std::string three = src_.text.substr(pos_, 3);
      for (const char* cand : kPunct3) {
        if (three == cand) return Make(TokenKind::kPunct, start, start + 3);
      }
    }
    if (remaining >= 2) {
      std::string two = src_.text.substr(pos_, 2);
      for (const char* cand : kPunct2) {
        if (two == cand) return Make(TokenKind::kPunct, start, start + 2);
      }
    }
    return Make(TokenKind::kPunct, start, start + 1);
  }

  const SplicedSource& src_;
  size_t pos_ = 0;
};

}  // namespace

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<Token> Tokenize(const std::string& content) {
  SplicedSource spliced = Splice(content);
  Lexer lexer(spliced);
  return lexer.Run();
}

}  // namespace lint
}  // namespace cloudviews
