/// Deterministic fault injection at the network seams (accept, read,
/// write, queue-admit) plus abrupt client disconnects. The invariant under
/// test everywhere: a dropped request releases every resource it held —
/// no leaked submission-queue slots, no stuck in-flight-cap tokens, no
/// abandoned build locks — and the server keeps serving.

#include <string>

#include "fault/backoff.h"
#include "fault/fault_injector.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/wire.h"
#include "tests/net_test_util.h"

namespace cloudviews {
namespace net {
namespace {

using testing_util::NetSubmit;
using testing_util::ServerFixture;
using testing_util::StartServerFixture;
using testing_util::WaitUntil;

ServerFixture StartWithFault(fault::FaultInjector* fi) {
  return StartServerFixture(
      [fi](CloudViewsConfig* config) { config->fault = fi; });
}

/// Drop-everything assertion: nothing admitted is still holding a slot.
void ExpectNoLeaks(const ServerFixture& fx) {
  ServerStatsResponse stats = fx.server->Stats();
  EXPECT_EQ(stats.inflight, 0u) << "leaked admission tokens";
  EXPECT_EQ(stats.queue_depth, 0u) << "leaked queue slots";
}

TEST(NetFault, AcceptFaultDropsConnectionServerSurvives) {
  fault::FaultInjector fi;
  ServerFixture fx = StartWithFault(&fi);
  fault::FaultSpec spec;
  spec.trigger_every = 1;
  spec.max_fires = 1;
  fi.Arm(fault::points::kNetAccept, spec);

  // The TCP handshake completes (backlog), but the server closes the
  // socket before a session starts: the first round-trip fails.
  auto dropped = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(dropped.ok());
  EXPECT_FALSE(dropped->ServerStats().ok());

  // Fires exhausted: the next connection is served normally.
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->ServerStats().ok());
  EXPECT_EQ(fi.fires(fault::points::kNetAccept), 1u);
  ExpectNoLeaks(fx);
}

TEST(NetFault, ReadFaultTearsConnectionWithoutLeaking) {
  fault::FaultInjector fi;
  // The read-side check runs before each blocking frame read, so arm ahead
  // of the connection: hit 1 passes (the stats request below is served),
  // hit 2 fires and tears the connection down mid-stream.
  fault::FaultSpec spec;
  spec.trigger_every = 2;
  spec.max_fires = 1;
  fi.Arm(fault::points::kNetRead, spec);
  ServerFixture fx = StartWithFault(&fi);
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->ServerStats().ok());

  auto reply = client->Submit(NetSubmit("tmpl-rf", "rf", "2024-01-01", 1));
  EXPECT_FALSE(reply.ok());  // connection died before the request was read

  fi.Disarm(fault::points::kNetRead);
  ExpectNoLeaks(fx);
  ServerStatsResponse stats = fx.server->Stats();
  EXPECT_EQ(stats.accepted, 0u);  // the request never reached admission

  // A fresh connection submits cleanly after the drop.
  auto retry = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(retry.ok());
  auto ok = retry->Submit(NetSubmit("tmpl-rf", "rf", "2024-01-01", 1));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->kind, Client::SubmitReply::Kind::kResult);
  ExpectNoLeaks(fx);
}

TEST(NetFault, WriteFaultLosesResponseButJobAndTokensSurvive) {
  fault::FaultInjector fi;
  ServerFixture fx = StartWithFault(&fi);
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  fault::FaultSpec spec;
  spec.trigger_every = 1;
  spec.max_fires = 1;
  fi.Arm(fault::points::kNetWrite, spec);

  // The job is admitted and runs; the result frame is dropped and the
  // connection torn down, exactly like a peer reset mid-write.
  auto reply = client->Submit(NetSubmit("tmpl-wf", "wf", "2024-01-01", 1));
  EXPECT_FALSE(reply.ok());

  ASSERT_TRUE(WaitUntil(
      [&fx] { return fx.server->Stats().completed == 1; }))
      << "job should complete even though its response was dropped";
  ServerStatsResponse stats = fx.server->Stats();
  EXPECT_EQ(stats.failed, 0u);
  ExpectNoLeaks(fx);

  fi.Disarm(fault::points::kNetWrite);
  auto retry = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(retry.ok());
  auto ok = retry->Submit(NetSubmit("tmpl-wf", "wf", "2024-01-01", 2));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->kind, Client::SubmitReply::Kind::kResult);
}

TEST(NetFault, QueueAdmitFaultShedsWithTypedRetryAfter) {
  fault::FaultInjector fi;
  ServerFixture fx = StartWithFault(&fi);
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  fault::FaultSpec spec;
  spec.trigger_every = 1;
  spec.max_fires = 1;
  fi.Arm(fault::points::kNetQueueAdmit, spec);

  SubmitRequest req = NetSubmit("tmpl-qa", "qa", "2024-01-01", 1);
  auto shed = client->Submit(req);
  ASSERT_TRUE(shed.ok());
  ASSERT_EQ(shed->kind, Client::SubmitReply::Kind::kRetryAfter);
  EXPECT_EQ(shed->retry.reason, ShedReason::kInjected);
  EXPECT_GT(shed->retry.retry_after_ms, 0u);

  // The shed left nothing behind and the retry goes straight through.
  ExpectNoLeaks(fx);
  auto retried = client->Submit(req);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried->kind, Client::SubmitReply::Kind::kResult);

  ServerStatsResponse stats = fx.server->Stats();
  EXPECT_EQ(stats.shed_injected, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(NetFault, SubmitWithRetryRidesOutInjectedSheds) {
  fault::FaultInjector fi;
  ServerFixture fx = StartWithFault(&fi);
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  fault::FaultSpec spec;
  spec.trigger_every = 1;
  spec.max_fires = 2;
  fi.Arm(fault::points::kNetQueueAdmit, spec);

  fault::RetryPolicy policy;
  policy.max_attempts = 5;
  fault::RecordingSleeper sleeper;
  int retries = 0;
  auto reply = client->SubmitWithRetry(
      NetSubmit("tmpl-rt", "rt", "2024-01-01", 1), policy, &sleeper,
      &retries);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->kind, Client::SubmitReply::Kind::kResult);
  EXPECT_EQ(retries, 2);
  // Each retry slept at least the server's RETRY_AFTER hint.
  ASSERT_EQ(sleeper.sleeps().size(), 2u);
  double hint = fx.cv->config().net.retry_after_ms / 1000.0;
  for (double s : sleeper.sleeps()) EXPECT_GE(s, hint);
  EXPECT_EQ(fx.server->Stats().shed_injected, 2u);
  ExpectNoLeaks(fx);
}

TEST(NetFault, ClientVanishingMidRequestLeaksNothing) {
  fault::FaultInjector fi;
  ServerFixture fx = StartWithFault(&fi);
  {
    // Submit a waited job, then vanish without reading the response: the
    // server's result write hits a dead socket.
    auto client = Client::Connect("127.0.0.1", fx.port);
    ASSERT_TRUE(client.ok());
    WireWriter w;
    EncodeSubmitRequest(NetSubmit("tmpl-gone", "gone", "2024-01-01", 1), &w);
    ASSERT_TRUE(
        client->socket()->SendAll(EncodeFrame(MsgType::kSubmit, w.bytes()))
            .ok());
  }  // socket closes here, request in flight

  ASSERT_TRUE(WaitUntil(
      [&fx] { return fx.server->Stats().completed == 1; }))
      << "the admitted job must run to completion";
  ExpectNoLeaks(fx);
  EXPECT_EQ(fx.server->Stats().failed, 0u);

  // Build locks / materialization state survived the drop: a day-2 submit
  // on the same template still completes (and can reuse normally).
  fx.cv->RunAnalyzerAndLoad();
  auto client = Client::Connect("127.0.0.1", fx.port);
  ASSERT_TRUE(client.ok());
  auto day2 = client->Submit(NetSubmit("tmpl-gone", "gone", "2024-01-02", 2));
  ASSERT_TRUE(day2.ok());
  ASSERT_EQ(day2->kind, Client::SubmitReply::Kind::kResult);
  EXPECT_EQ(day2->result.outcome.materialize_lock_denied, 0);
  ExpectNoLeaks(fx);
}

}  // namespace
}  // namespace net
}  // namespace cloudviews
