#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace cloudviews {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char separator) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == separator) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  for (;;) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out += s.substr(pos);
      return out;
    }
    out += s.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  return StrFormat("%.1f %s", bytes, kUnits[unit]);
}

}  // namespace cloudviews
