#ifndef CLOUDVIEWS_TESTS_TEST_UTIL_H_
#define CLOUDVIEWS_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "plan/plan_builder.h"
#include "storage/storage_manager.h"

namespace cloudviews {
namespace testing_util {

inline Schema ClickSchema() {
  return Schema({{"user", DataType::kInt64},
                 {"page", DataType::kString},
                 {"latency", DataType::kInt64},
                 {"when", DataType::kDate}});
}

/// Writes a synthetic click stream; deterministic in (seed, rows).
inline void WriteClickStream(StorageManager* storage,
                             const std::string& name, size_t rows,
                             uint64_t seed, const std::string& date_iso,
                             const std::string& guid = "") {
  Rng rng(seed);
  Batch b(ClickSchema());
  int64_t day = 0;
  ParseDate(date_iso, &day);
  static const char* kPages[] = {"/home", "/search", "/cart", "/about",
                                 "/checkout"};
  for (size_t i = 0; i < rows; ++i) {
    Status st = b.AppendRow(
        {Value::Int64(static_cast<int64_t>(rng.Uniform(100))),
         Value::String(kPages[rng.Uniform(5)]),
         Value::Int64(static_cast<int64_t>(rng.Uniform(500))),
         Value::Date(day)});
    (void)st;
  }
  Status st = storage->WriteStream(
      MakeStreamData(name, guid.empty() ? "guid-" + name : guid,
                     ClickSchema(), {b}, storage->clock()->Now()));
  (void)st;
}

/// The shared computation of the reuse tests: filter + aggregate over one
/// day of clicks. `date` parameterizes the recurring instance.
inline PlanNodePtr SharedAggPlan(const std::string& date,
                                 const std::string& guid_suffix = "") {
  return PlanBuilder::Extract("clicks_{date}", "clicks_" + date,
                              "guid-clicks_" + date + guid_suffix,
                              ClickSchema())
      .Filter(Gt(Col("latency"), Lit(int64_t{50})))
      .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"},
                            {AggFunc::kSum, Col("latency"), "total_latency"}})
      .Build();
}

}  // namespace testing_util
}  // namespace cloudviews

#endif  // CLOUDVIEWS_TESTS_TEST_UTIL_H_
