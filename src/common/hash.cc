#include "common/hash.h"

#include <array>
#include <cstdio>

namespace cloudviews {

uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

HashBuilder& HashBuilder::Add(uint64_t v) {
  // Two independent accumulation lanes for the two output words.
  a_ = Mix64(a_ ^ v);
  b_ = Mix64(b_ + v + (count_ << 1 | 1));
  ++count_;
  return *this;
}

HashBuilder& HashBuilder::Add(double v) {
  uint64_t bits;
  // Canonicalize -0.0 so logically equal predicates hash identically.
  if (v == 0.0) v = 0.0;
  std::memcpy(&bits, &v, sizeof(bits));
  return Add(bits);
}

HashBuilder& HashBuilder::Add(std::string_view s) {
  a_ = Mix64(a_ ^ Fnv1a64(s.data(), s.size()));
  b_ = Mix64(b_ + Fnv1a64(s.data(), s.size(), 0x84222325cbf29ce4ULL));
  Add(static_cast<uint64_t>(s.size()));
  return *this;
}

Hash128 HashBuilder::Finish() const {
  Hash128 h;
  h.hi = Mix64(a_ ^ (count_ * 0xff51afd7ed558ccdULL));
  h.lo = Mix64(b_ + count_);
  return h;
}

std::string Hash128::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf, 32);
}

namespace {
bool ParseHex64(std::string_view s, uint64_t* out) {
  uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}
}  // namespace

bool Hash128::FromHex(std::string_view hex, Hash128* out) {
  if (hex.size() != 32) return false;
  return ParseHex64(hex.substr(0, 16), &out->hi) &&
         ParseHex64(hex.substr(16, 16), &out->lo);
}

}  // namespace cloudviews
