file(REMOVE_RECURSE
  "CMakeFiles/cv_common.dir/guid.cc.o"
  "CMakeFiles/cv_common.dir/guid.cc.o.d"
  "CMakeFiles/cv_common.dir/hash.cc.o"
  "CMakeFiles/cv_common.dir/hash.cc.o.d"
  "CMakeFiles/cv_common.dir/random.cc.o"
  "CMakeFiles/cv_common.dir/random.cc.o.d"
  "CMakeFiles/cv_common.dir/stats.cc.o"
  "CMakeFiles/cv_common.dir/stats.cc.o.d"
  "CMakeFiles/cv_common.dir/status.cc.o"
  "CMakeFiles/cv_common.dir/status.cc.o.d"
  "CMakeFiles/cv_common.dir/string_util.cc.o"
  "CMakeFiles/cv_common.dir/string_util.cc.o.d"
  "CMakeFiles/cv_common.dir/table_printer.cc.o"
  "CMakeFiles/cv_common.dir/table_printer.cc.o.d"
  "libcv_common.a"
  "libcv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
