#ifndef CLOUDVIEWS_PLAN_PLAN_BUILDER_H_
#define CLOUDVIEWS_PLAN_PLAN_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "plan/plan_node.h"

namespace cloudviews {

/// \brief Fluent builder for plan trees, used by tests, examples, and the
/// workload generators.
///
/// \code
///   auto plan = PlanBuilder::Extract("clicks_{date}", "clicks_2018-01-01",
///                                    guid, schema)
///                   .Filter(Gt(Col("latency"), Lit(int64_t{10})))
///                   .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"}})
///                   .Output("out_2018-01-01")
///                   .Build();
/// \endcode
class PlanBuilder {
 public:
  /// Starts from an input stream scan. `template_name` is the recurring
  /// template identity; pass the concrete name again for one-off inputs.
  static PlanBuilder Extract(std::string template_name,
                             std::string stream_name, std::string guid,
                             Schema schema);

  /// Starts from an existing subtree.
  static PlanBuilder From(PlanNodePtr node);

  PlanBuilder Filter(ExprPtr predicate) &&;
  PlanBuilder Project(std::vector<NamedExpr> exprs) &&;
  /// Projects existing columns by name (RestrRemap-style).
  PlanBuilder Select(const std::vector<std::string>& columns) &&;
  PlanBuilder Join(PlanBuilder right, JoinType type,
                   std::vector<std::pair<std::string, std::string>> keys) &&;
  PlanBuilder Aggregate(std::vector<std::string> group_keys,
                        std::vector<AggregateSpec> aggregates) &&;
  PlanBuilder Sort(std::vector<SortKey> keys) &&;
  PlanBuilder Exchange(Partitioning partitioning) &&;
  PlanBuilder UnionAll(PlanBuilder other) &&;
  PlanBuilder Process(std::string processor, std::string library,
                      std::string version, Schema output_schema) &&;
  PlanBuilder Top(int64_t limit) &&;
  PlanBuilder Output(std::string stream_name) &&;

  /// Returns the root; the caller still needs to Bind() (or let the
  /// compiler pipeline do it).
  PlanNodePtr Build() &&;

 private:
  explicit PlanBuilder(PlanNodePtr root) : root_(std::move(root)) {}

  PlanNodePtr root_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_PLAN_PLAN_BUILDER_H_
