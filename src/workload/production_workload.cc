#include "workload/production_workload.h"

#include "common/random.h"
#include "common/string_util.h"
#include "plan/plan_builder.h"

namespace cloudviews {

namespace {

Schema ImpressionSchema() {
  return Schema({{"user", DataType::kInt64},
                 {"ad", DataType::kInt64},
                 {"publisher", DataType::kString},
                 {"bid", DataType::kDouble},
                 {"when", DataType::kDate}});
}

Schema ClickSchema() {
  return Schema({{"click_user", DataType::kInt64},
                 {"click_ad", DataType::kInt64},
                 {"revenue", DataType::kDouble},
                 {"click_when", DataType::kDate}});
}

std::string Stream(const char* base, const std::string& date) {
  return std::string(base) + "_" + date;
}

PlanBuilder ExtractStream(const char* base, const std::string& date,
                          Schema schema) {
  std::string name = Stream(base, date);
  return PlanBuilder::Extract(std::string(base) + "_{date}", name,
                              "guid-" + name, std::move(schema));
}

}  // namespace

const std::vector<int>& ProductionWorkload::GroupSizes() {
  static const std::vector<int> kSizes{16, 12, 4};
  return kSizes;
}

ProductionWorkload::ProductionWorkload() : ProductionWorkload(Options()) {}

ProductionWorkload::ProductionWorkload(Options options) : options_(options) {
  // Arrival order: interleave the three pipelines deterministically the way
  // independent recurring pipelines land on the cluster.
  Rng rng(options_.seed);
  std::vector<int> remaining = GroupSizes();
  while (job_groups_.size() < static_cast<size_t>(kNumJobs)) {
    std::vector<double> weights;
    for (int r : remaining) weights.push_back(static_cast<double>(r));
    size_t g = rng.WeightedIndex(weights);
    if (remaining[g] == 0) continue;
    --remaining[g];
    job_groups_.push_back(static_cast<int>(g));
  }
}

void ProductionWorkload::WriteInputs(StorageManager* storage,
                                     const std::string& date) const {
  int64_t day = 0;
  ParseDate(date, &day);
  Rng rng(options_.seed * 131 + Fnv1a64(date.data(), date.size()));
  static const char* kPublishers[] = {"news", "video", "social", "search",
                                      "mail", "games"};

  Batch impressions(ImpressionSchema());
  for (size_t r = 0; r < options_.rows_per_input; ++r) {
    (void)impressions.AppendRow(
        {Value::Int64(static_cast<int64_t>(rng.Uniform(2000))),
         Value::Int64(static_cast<int64_t>(rng.Uniform(300))),
         Value::String(kPublishers[rng.Uniform(6)]),
         Value::Double(rng.NextDouble() * 5.0), Value::Date(day)});
  }
  (void)storage->WriteStream(MakeStreamData(
      Stream("impressions", date), "guid-" + Stream("impressions", date),
      ImpressionSchema(), {impressions}, storage->clock()->Now()));

  Batch clicks(ClickSchema());
  for (size_t r = 0; r < options_.rows_per_input / 4; ++r) {
    (void)clicks.AppendRow(
        {Value::Int64(static_cast<int64_t>(rng.Uniform(2000))),
         Value::Int64(static_cast<int64_t>(rng.Uniform(300))),
         Value::Double(rng.NextDouble() * 2.0), Value::Date(day)});
  }
  (void)storage->WriteStream(MakeStreamData(
      Stream("clicks", date), "guid-" + Stream("clicks", date),
      ClickSchema(), {clicks}, storage->clock()->Now()));
}

PlanNodePtr ProductionWorkload::BuildSharedComputation(
    int group, const std::string& date) const {
  auto date_pred = [&](const char* col) {
    return Ge(Col(col), Param("date", Value::DateFromString(date)));
  };
  switch (group) {
    case 0: {
      // Impression cooking: cleanse + filter + per-(publisher, ad) rollup.
      return ExtractStream("impressions", date, ImpressionSchema())
          .Process("cleanse", "adslib", "7.4", ImpressionSchema())
          .Filter(And(Gt(Col("bid"), Lit(0.25)), date_pred("when")))
          .Aggregate({"publisher", "ad"},
                     {{AggFunc::kCount, nullptr, "impressions"},
                      {AggFunc::kSum, Col("bid"), "total_bid"},
                      {AggFunc::kMax, Col("bid"), "max_bid"}})
          .Build();
    }
    case 1: {
      // Click attribution: impressions joined with clicks per (user, ad).
      auto imps = ExtractStream("impressions", date, ImpressionSchema())
                      .Filter(date_pred("when"));
      auto clicks = ExtractStream("clicks", date, ClickSchema())
                        .Filter(date_pred("click_when"));
      return std::move(imps)
          .Join(std::move(clicks), JoinType::kInner,
                {{"user", "click_user"}, {"ad", "click_ad"}})
          .Aggregate({"publisher"},
                     {{AggFunc::kCount, nullptr, "clicks"},
                      {AggFunc::kSum, Col("revenue"), "revenue"}})
          .Build();
    }
    default: {
      // Per-user spend profile.
      return ExtractStream("impressions", date, ImpressionSchema())
          .Filter(date_pred("when"))
          .Aggregate({"user"}, {{AggFunc::kCount, nullptr, "n"},
                                {AggFunc::kSum, Col("bid"), "spend"}})
          .Filter(Gt(Col("n"), Lit(int64_t{1})))
          .Build();
    }
  }
}

PlanNodePtr ProductionWorkload::BuildJob(int group, int member,
                                         const std::string& date) const {
  PlanNodePtr shared = BuildSharedComputation(group, date);
  std::string out =
      StrFormat("prod_g%d_m%d_%s", group, member, date.c_str());

  // Member-specific post-processing joins the shared rollup back against
  // raw data, so the overlapping computation is a *fraction* of each job
  // (reuse removes part of the work, like the paper's Fig 11 spread).
  PlanBuilder raw = [&]() -> PlanBuilder {
    if (group == 2) {
      // Highly selective tail: these jobs are dominated by the shared
      // computation, so their builder pays the full materialization
      // overhead relative to a short job (the Fig 11/12 slowdowns).
      return ExtractStream("clicks", date, ClickSchema())
          .Filter(Gt(Col("revenue"),
                     Lit(1.8 + 0.01 * static_cast<double>(member % 9))))
          .Project({{Col("click_user"), "r_user"},
                    {Col("revenue"), "r_value"}});
    }
    return ExtractStream("impressions", date, ImpressionSchema())
        .Filter(Gt(Col("bid"),
                   Lit(0.02 * static_cast<double>(member % 11))))
        .Project({{Col("publisher"), "r_pub"},
                  {Col("ad"), "r_ad"},
                  {Col("bid"), "r_value"}});
  }();

  std::vector<std::pair<std::string, std::string>> keys;
  std::string group_col;
  if (group == 2) {
    keys = {{"user", "r_user"}};
    group_col = "user";
  } else if (group == 0) {
    // Join on (publisher, ad): the shared rollup is unique per pair, so
    // the join stays linear in the raw side.
    keys = {{"publisher", "r_pub"}, {"ad", "r_ad"}};
    group_col = "publisher";
  } else {
    keys = {{"publisher", "r_pub"}};
    group_col = "publisher";
  }

  PlanBuilder joined =
      PlanBuilder::From(shared).Join(std::move(raw), JoinType::kInner,
                                     std::move(keys));
  PlanBuilder agg = std::move(joined).Aggregate(
      {group_col},
      {{AggFunc::kCount, nullptr, "matches"},
       {AggFunc::kSum, Col("r_value"), "raw_value"},
       {AggFunc::kMax, Col("r_value"), "max_value"}});

  switch (member % 4) {
    case 0:
      return std::move(agg)
          .Sort({{"raw_value", false}})
          .Top(20 + member)
          .Output(out)
          .Build();
    case 1:
      return std::move(agg)
          .Filter(Gt(Col("matches"), Lit(static_cast<int64_t>(member))))
          .Output(out)
          .Build();
    case 2:
      return std::move(agg)
          .Project({{Col(group_col), group_col},
                    {Col("matches"), "matches"},
                    {Mul(Col("raw_value"),
                         Lit(1.0 + 0.01 * static_cast<double>(member))),
                     "adjusted"}})
          .Output(out)
          .Build();
    default:
      return std::move(agg).Output(out).Build();
  }
}

std::vector<JobDefinition> ProductionWorkload::Instance(
    const std::string& date) const {
  std::vector<int> member_counter(GroupSizes().size(), 0);
  std::vector<JobDefinition> jobs;
  jobs.reserve(static_cast<size_t>(kNumJobs));
  for (size_t i = 0; i < job_groups_.size(); ++i) {
    int group = job_groups_[i];
    int member = member_counter[static_cast<size_t>(group)]++;
    JobDefinition def;
    def.template_id = StrFormat("prod_g%d_m%d", group, member);
    def.cluster = "prod-cluster";
    def.business_unit = "ads";
    def.vc = StrFormat("ads-vc%d", group);
    def.user = StrFormat("pipeline%d", group);
    def.recurrence_period = kSecondsPerDay;
    def.logical_plan = BuildJob(group, member, date);
    jobs.push_back(std::move(def));
  }
  return jobs;
}

}  // namespace cloudviews
