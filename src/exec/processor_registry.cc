#include "exec/processor_registry.h"

#include "common/string_util.h"

namespace cloudviews {

ProcessorRegistry* ProcessorRegistry::Global() {
  static ProcessorRegistry* registry = new ProcessorRegistry();  // NOLINT(naked-new): leaked singleton
  return registry;
}

void ProcessorRegistry::Register(const std::string& name, ProcessorFn fn) {
  entries_[name] = std::move(fn);
}

bool ProcessorRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

Result<const ProcessorFn*> ProcessorRegistry::Lookup(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no processor named '" + name + "'");
  }
  return &it->second;
}

ProcessorRegistry::ProcessorRegistry() {
  // "identity": pass rows through unchanged. The declared output schema
  // must match the input schema. Stands in for cheap cleansing UDOs.
  Register("identity", [](const Batch& input, Batch* output) -> Status {
    *output = input;
    return Status::OK();
  });

  // "first_of_group": a reducer that keeps only the first row of each
  // group it is handed (dedup-by-key when used under REDUCE).
  Register("first_of_group", [](const Batch& input, Batch* output) -> Status {
    *output = Batch(input.schema());
    if (input.num_rows() > 0) output->AppendRowFrom(input, 0);
    return Status::OK();
  });

  // "cleanse": drops rows whose first string column is empty; other rows
  // pass through. A typical data-preparation UDO.
  Register("cleanse", [](const Batch& input, Batch* output) -> Status {
    int str_col = -1;
    for (size_t i = 0; i < input.schema().num_fields(); ++i) {
      if (input.schema().field(i).type == DataType::kString) {
        str_col = static_cast<int>(i);
        break;
      }
    }
    *output = Batch(input.schema());
    for (size_t r = 0; r < input.num_rows(); ++r) {
      if (str_col >= 0) {
        const Column& c = input.column(static_cast<size_t>(str_col));
        if (!c.IsNull(r) && c.string_data()[r].empty()) continue;
      }
      output->AppendRowFrom(input, r);
    }
    return Status::OK();
  });
}

}  // namespace cloudviews
