# Empty dependencies file for ablation_physical_design.
# This may be replaced when dependencies are built.
