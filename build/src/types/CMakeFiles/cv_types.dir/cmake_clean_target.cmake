file(REMOVE_RECURSE
  "libcv_types.a"
)
