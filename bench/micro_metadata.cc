// Microbenchmarks: metadata service operations under varying numbers of
// loaded annotations.
#include <benchmark/benchmark.h>

#include "metadata/metadata_service.h"

namespace cloudviews {
namespace {

std::vector<AnnotatedComputation> MakeAnnotations(int n) {
  std::vector<AnnotatedComputation> comps;
  comps.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    AnnotatedComputation comp;
    comp.annotation.normalized_signature =
        Hash128{static_cast<uint64_t>(i + 1), 7};
    comp.annotation.frequency = 3;
    comp.tags = {"template:t" + std::to_string(i % (n / 4 + 1)),
                 "vc:v" + std::to_string(i % 16)};
    comps.push_back(std::move(comp));
  }
  return comps;
}

void BM_LoadAnalysis(benchmark::State& state) {
  SimulatedClock clock;
  StorageManager storage(&clock);
  MetadataService service(&clock, &storage);
  auto comps = MakeAnnotations(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    service.LoadAnalysis(comps);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LoadAnalysis)->Arg(100)->Arg(1000)->Arg(10000);

void BM_GetRelevantViews(benchmark::State& state) {
  SimulatedClock clock;
  StorageManager storage(&clock);
  MetadataService service(&clock, &storage);
  service.LoadAnalysis(MakeAnnotations(static_cast<int>(state.range(0))));
  std::vector<std::string> tags{"template:t1", "vc:v3"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.GetRelevantViews(tags));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GetRelevantViews)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ProposeAndReport(benchmark::State& state) {
  SimulatedClock clock;
  StorageManager storage(&clock);
  MetadataService service(&clock, &storage);
  uint64_t i = 0;
  for (auto _ : state) {
    Hash128 precise{++i, 99};
    benchmark::DoNotOptimize(
        service.ProposeMaterialize(Hash128{1, 1}, precise, i, 10));
    MaterializedViewInfo info;
    info.normalized_signature = Hash128{1, 1};
    info.precise_signature = precise;
    info.producer_job_id = i;
    info.path = "/views/x/y.ss";
    // Intentional drop: throughput benchmark, the registration cannot fail.
    (void)service.ReportMaterialized(info, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProposeAndReport);

void BM_FindMaterialized(benchmark::State& state) {
  SimulatedClock clock;
  StorageManager storage(&clock);
  MetadataService service(&clock, &storage);
  for (uint64_t i = 0; i < 10000; ++i) {
    MaterializedViewInfo info;
    info.normalized_signature = Hash128{i, 1};
    info.precise_signature = Hash128{i, 2};
    info.path = "/views/x/y.ss";
    // Intentional drop: setup loop, registrations cannot fail here.
    (void)service.ReportMaterialized(info, 0);
  }
  uint64_t i = 0;
  for (auto _ : state) {
    Hash128 sig{(i++) % 10000, 1};
    benchmark::DoNotOptimize(
        service.FindMaterialized(sig, Hash128{sig.hi, 2}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FindMaterialized);

}  // namespace
}  // namespace cloudviews
