#ifndef CLOUDVIEWS_RUNTIME_PLAN_CACHE_H_
#define CLOUDVIEWS_RUNTIME_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "plan/plan_node.h"

namespace cloudviews {

/// \brief Bounded, thread-safe LRU of compiled plans for recurring job
/// templates — the recurring-job fast path (see DESIGN.md).
///
/// Keyed by the *normalized* signature of the submitted logical plan (the
/// script-template identity, Sec 3) plus the CloudViews opt-in flag. Each
/// entry carries two artifacts at different reuse tiers:
///
///  - the *skeleton*: the parsed, logically-rewritten template tree. It is
///    catalog-independent, so any later occurrence of the template can
///    rebind its `{param}` holes onto a clone and skip parse + logical
///    optimize, re-running only physical planning and the view passes.
///  - the *rewritten* physical plan, tagged with the metadata service's
///    catalog epoch and the instance's precise signature. It is served
///    only when the epoch still matches (no view was registered, purged,
///    or lock-flipped since — never serve a stale rewrite) and the precise
///    signature matches (same template over the same data).
class PlanCache {
 public:
  struct Key {
    Hash128 normalized;
    /// Plans compiled with and without the view passes differ; a template
    /// submitted under both settings gets two independent entries.
    bool cloudviews = false;

    bool operator==(const Key& other) const {
      return normalized == other.normalized && cloudviews == other.cloudviews;
    }
  };

  struct Entry {
    /// Catalog epoch `rewritten` was compiled against.
    uint64_t catalog_epoch = 0;
    /// Precise signature of the instance that produced `rewritten`.
    Hash128 precise;
    /// Logically-rewritten template tree; null when the template has
    /// expression-level holes the rewrites may reorder (see
    /// HasExprLevelParamHoles). Immutable once inserted — serve by Clone.
    PlanNodePtr skeleton;
    /// Fully optimized physical plan; null when the plan is not safely
    /// replayable (it carried Spool build locks — side effects). Immutable
    /// once inserted — serve by Clone.
    PlanNodePtr rewritten;
  };

  /// Lookup outcome. The entry is shared and immutable: callers must
  /// Clone() any tree before binding or mutating it.
  struct Probe {
    std::shared_ptr<const Entry> entry;
    /// True when entry->rewritten is non-null AND its catalog epoch and
    /// precise signature both match the probe — the full-hit tier.
    bool rewritten_valid = false;
  };

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  static constexpr size_t kDefaultCapacity = 256;

  /// Publishes hit/miss/invalidation counters and the entry-count gauge.
  /// Call before concurrent use.
  void SetMetrics(obs::MetricsRegistry* metrics);

  /// Probes for `key` at the caller-observed catalog `epoch` (read BEFORE
  /// the probe, so a concurrent catalog change can only make the check
  /// conservatively stale, never unsafe) and instance signature `precise`.
  Probe Lookup(const Key& key, uint64_t epoch, const Hash128& precise)
      EXCLUDES(mu_);

  /// Inserts or replaces the entry for `key`, evicting the least recently
  /// used entry when full. Trees in `entry` must be private clones.
  void Insert(const Key& key, Entry entry) EXCLUDES(mu_);

  /// Drops the entry for `key` (e.g. after a views_fallback proved its
  /// rewritten plan unservable). No-op when absent.
  void Invalidate(const Key& key) EXCLUDES(mu_);

  /// Outcome accounting — the service decides after validation/rebinding.
  void OnServed(bool full_hit);
  /// A full-hit candidate failed live-view validation (clock-driven expiry
  /// bumps no epoch) and was demoted to the skeleton tier.
  void OnDemoted();
  /// A skeleton's `{param}` holes could not be rebound; full replan.
  void OnRebindFailed();

  struct Stats {
    uint64_t hits_full = 0;
    uint64_t hits_skeleton = 0;
    uint64_t misses = 0;
    uint64_t epoch_invalidations = 0;
    uint64_t demotions = 0;
    uint64_t rebind_failures = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t explicit_invalidations = 0;
    size_t entries = 0;
  };
  Stats stats() const EXCLUDES(mu_);

 private:
  struct KeyHasher {
    size_t operator()(const Key& key) const {
      return Hash128Hasher()(key.normalized) ^
             (key.cloudviews ? 0x9e3779b97f4a7c15ULL : 0);
    }
  };
  struct Node {
    Key key;
    std::shared_ptr<const Entry> entry;
  };
  struct Instruments {
    obs::Counter* hits_full = nullptr;
    obs::Counter* hits_skeleton = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* epoch_invalidations = nullptr;
    obs::Counter* demotions = nullptr;
    obs::Counter* rebind_failures = nullptr;
    obs::Counter* insertions = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* entries = nullptr;
  };

  size_t capacity_;
  /// Set once before concurrent use, read-only afterwards.
  Instruments obs_;

  mutable Mutex mu_;
  /// Most recently used at the front.
  std::list<Node> lru_ GUARDED_BY(mu_);
  std::unordered_map<Key, std::list<Node>::iterator, KeyHasher> index_
      GUARDED_BY(mu_);
  mutable Stats stats_ GUARDED_BY(mu_);
};

/// True when `plan` holds expression-level `{param}` holes — bound
/// ParameterExprs or date literals (normalized signatures abstract date
/// values, making them per-instance). The logical rewrites may merge or
/// move the predicates holding them, so positional rebinding onto a cached
/// skeleton is unsound: such templates get no skeleton tier (full-hit
/// caching by precise signature still applies).
bool HasExprLevelParamHoles(const PlanNode& plan);

/// Rebinds the node-local `{param}` holes of the cached `skeleton` —
/// Extract stream/GUID, Process/Reduce UDO version, Output stream — from
/// the freshly submitted instance `fresh_logical` of the same template, by
/// pre-order position (the logical rewrites move only filters, so the hole
/// order is stable). Verifies hole counts, kinds, and template identities
/// pairwise; returns false (skeleton unusable, caller replans fully) on
/// any mismatch.
bool RebindSkeletonParams(PlanNode* skeleton, PlanNode* fresh_logical);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_RUNTIME_PLAN_CACHE_H_
