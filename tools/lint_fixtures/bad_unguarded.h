#ifndef CLOUDVIEWS_TOOLS_LINT_FIXTURES_BAD_UNGUARDED_H_
#define CLOUDVIEWS_TOOLS_LINT_FIXTURES_BAD_UNGUARDED_H_

// Fixture: seeded mutex-guarded violation — a Mutex member with no
// GUARDED_BY annotation anywhere in the header.
#include "common/mutex.h"

namespace cloudviews {

class UnguardedCounter {
 public:
  void Increment();

 private:
  Mutex mu_;
  int count_ = 0;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_TOOLS_LINT_FIXTURES_BAD_UNGUARDED_H_
