file(REMOVE_RECURSE
  "CMakeFiles/fig05_impact_cdfs.dir/fig05_impact_cdfs.cc.o"
  "CMakeFiles/fig05_impact_cdfs.dir/fig05_impact_cdfs.cc.o.d"
  "fig05_impact_cdfs"
  "fig05_impact_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_impact_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
