#ifndef CLOUDVIEWS_COMMON_CLOCK_H_
#define CLOUDVIEWS_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cloudviews {

/// Logical timestamp: seconds since an arbitrary epoch. Recurring jobs are
/// scheduled on this timeline (hourly = 3600, daily = 86400, ...).
using LogicalTime = int64_t;

constexpr LogicalTime kSecondsPerHour = 3600;
constexpr LogicalTime kSecondsPerDay = 86400;
constexpr LogicalTime kSecondsPerWeek = 7 * kSecondsPerDay;

/// \brief Virtual clock driving the simulated job service.
///
/// The job service is "always online" (Sec 1.3); experiments advance this
/// clock instead of sleeping, so recurring-instance boundaries, lock
/// expiries, and view expiries are deterministic and fast to simulate.
class SimulatedClock {
 public:
  explicit SimulatedClock(LogicalTime start = 0) : now_(start) {}

  LogicalTime Now() const { return now_.load(std::memory_order_relaxed); }

  void AdvanceSeconds(LogicalTime s) {
    now_.fetch_add(s, std::memory_order_relaxed);
  }
  void AdvanceTo(LogicalTime t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<LogicalTime> now_;
};

/// \brief Injectable wall-time source for latency measurement and tracing.
///
/// Distinct from SimulatedClock: SimulatedClock is the *logical* timeline
/// recurring jobs are scheduled on, while MonotonicClock measures real
/// elapsed seconds (operator latencies, stage durations, span timestamps).
/// Production code uses Real(); tests inject FakeMonotonicClock so traces
/// and profiles are byte-deterministic. This header (plus src/obs/) is the
/// only place allowed to touch std::chrono clocks directly — repo_lint's
/// banned-clock rule enforces it.
class MonotonicClock {
 public:
  virtual ~MonotonicClock() = default;

  /// Monotonic seconds since an arbitrary process-local epoch.
  virtual double NowSeconds() = 0;

  /// The process-wide steady-clock instance.
  static MonotonicClock* Real();
};

/// \brief Manually-advanced monotonic clock for deterministic tests.
class FakeMonotonicClock final : public MonotonicClock {
 public:
  explicit FakeMonotonicClock(double start_seconds = 0)
      : now_(start_seconds) {}

  double NowSeconds() override {
    return now_.load(std::memory_order_relaxed);
  }

  void AdvanceSeconds(double s) {
    // fetch_add on atomic<double> needs C++20 library support; a CAS loop
    // keeps this portable across the toolchains CI builds with.
    double cur = now_.load(std::memory_order_relaxed);
    while (!now_.compare_exchange_weak(cur, cur + s,
                                       std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> now_;
};

namespace internal {

class RealMonotonicClock final : public MonotonicClock {
 public:
  double NowSeconds() override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace internal

inline MonotonicClock* MonotonicClock::Real() {
  static internal::RealMonotonicClock clock;
  return &clock;
}

/// Shorthand for MonotonicClock::Real()->NowSeconds(); the drop-in
/// replacement for ad-hoc steady_clock::now() call sites.
inline double MonotonicNowSeconds() {
  return MonotonicClock::Real()->NowSeconds();
}

}  // namespace cloudviews

#endif  // CLOUDVIEWS_COMMON_CLOCK_H_
