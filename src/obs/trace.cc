#include "obs/trace.h"

#include <cstdio>

namespace cloudviews {
namespace obs {

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Stamps `end` on every span in the subtree that is still open.
void CloseOpenSpans(SpanRecord* record, double end) {
  if (record->end_seconds == 0) record->end_seconds = end;
  for (auto& child : record->children) CloseOpenSpans(child.get(), end);
}

}  // namespace

const SpanRecord* SpanRecord::Find(const std::string& span_name) const {
  if (name == span_name) return this;
  for (const auto& child : children) {
    if (const SpanRecord* found = child->Find(span_name)) return found;
  }
  return nullptr;
}

/// Root-shared mutable state of one in-flight trace. The root SpanRecord is
/// owned here until the root span ends, then moves to the tracer; `mu`
/// serializes every mutation of the tree (attributes, children, end
/// stamps) across the threads holding span handles into it.
struct Span::TraceState {
  Tracer* tracer = nullptr;
  MonotonicClock* clock = nullptr;
  Mutex mu;
  std::shared_ptr<SpanRecord> root GUARDED_BY(mu);
  bool delivered GUARDED_BY(mu) = false;
};

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    trace_ = std::move(other.trace_);
    record_ = other.record_;
    is_root_ = other.is_root_;
    other.record_ = nullptr;
    other.is_root_ = false;
  }
  return *this;
}

Span Span::StartChild(std::string name) {
  if (!active()) return Span();
  double now = trace_->clock->NowSeconds();
  MutexLock lock(trace_->mu);
  if (trace_->delivered) return Span();  // root already ended
  auto child = std::make_unique<SpanRecord>();
  child->name = std::move(name);
  child->start_seconds = now;
  SpanRecord* raw = child.get();
  record_->children.push_back(std::move(child));
  return Span(trace_, raw, /*is_root=*/false);
}

void Span::SetAttribute(const std::string& key, const std::string& value) {
  if (!active()) return;
  MutexLock lock(trace_->mu);
  if (trace_->delivered) return;
  for (auto& attr : record_->attributes) {
    if (attr.first == key) {
      attr.second = value;
      return;
    }
  }
  record_->attributes.emplace_back(key, value);
}

void Span::SetAttribute(const std::string& key, const char* value) {
  SetAttribute(key, std::string(value));
}

void Span::SetAttribute(const std::string& key, int64_t value) {
  SetAttribute(key, std::to_string(value));
}

void Span::SetAttribute(const std::string& key, uint64_t value) {
  SetAttribute(key, std::to_string(value));
}

void Span::SetAttribute(const std::string& key, double value) {
  SetAttribute(key, FormatDouble(value));
}

void Span::SetAttribute(const std::string& key, bool value) {
  SetAttribute(key, std::string(value ? "true" : "false"));
}

void Span::End() { (void)Finish(); }

std::shared_ptr<const SpanRecord> Span::Finish() {
  if (!active()) return nullptr;
  double now = trace_->clock->NowSeconds();
  std::shared_ptr<const SpanRecord> finished;
  {
    MutexLock lock(trace_->mu);
    if (!trace_->delivered) {
      if (record_->end_seconds == 0) record_->end_seconds = now;
      if (is_root_) {
        CloseOpenSpans(trace_->root.get(), now);
        trace_->delivered = true;
        finished = trace_->root;
      }
    }
  }
  if (finished != nullptr && trace_->tracer != nullptr) {
    trace_->tracer->Deliver(finished);
  }
  record_ = nullptr;
  trace_.reset();
  return finished;
}

Span Tracer::StartTrace(std::string name) {
  auto state = std::make_shared<Span::TraceState>();
  state->tracer = this;
  state->clock = clock_;
  auto root = std::make_shared<SpanRecord>();
  root->name = std::move(name);
  root->start_seconds = clock_->NowSeconds();
  SpanRecord* raw = root.get();
  {
    MutexLock lock(state->mu);
    state->root = std::move(root);
  }
  return Span(std::move(state), raw, /*is_root=*/true);
}

void Tracer::Deliver(std::shared_ptr<const SpanRecord> root) {
  MutexLock lock(mu_);
  traces_.push_back(std::move(root));
  while (traces_.size() > max_traces_) {
    traces_.pop_front();
    ++dropped_;
  }
}

std::vector<std::shared_ptr<const SpanRecord>> Tracer::FinishedTraces()
    const {
  MutexLock lock(mu_);
  return {traces_.begin(), traces_.end()};
}

std::shared_ptr<const SpanRecord> Tracer::LatestTrace() const {
  MutexLock lock(mu_);
  return traces_.empty() ? nullptr : traces_.back();
}

uint64_t Tracer::dropped_traces() const {
  MutexLock lock(mu_);
  return dropped_;
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  traces_.clear();
  dropped_ = 0;
}

}  // namespace obs
}  // namespace cloudviews
