// Work-sharing tests: the signature-keyed in-flight registry (leader
// election, follower adoption, timeouts, first-publish-wins), the
// build-piggyback wait on MetadataService, and the end-to-end do-no-harm
// contract — shared and piggybacked runs stay byte-identical to
// independent execution, and every sharing failure degrades the job to
// running alone instead of failing it.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/cloudviews.h"
#include "fault/fault_injector.h"
#include "runtime/inflight_sharing.h"
#include "signature/containment.h"
#include "signature/signature.h"
#include "tests/test_util.h"

namespace cloudviews {
namespace {

using fault::FaultInjector;
using fault::FaultSpec;
using testing_util::SharedAggPlan;
using testing_util::WriteClickStream;

// --- InflightSharing unit tests ---------------------------------------------

InflightSharing::ShareKey Key(uint64_t a, bool cloudviews = true) {
  return InflightSharing::ShareKey{Hash128{a, 1}, Hash128{a, 2}, cloudviews};
}

TEST(InflightSharingTest, FirstJoinLeadsLaterJoinsFollow) {
  InflightSharing reg;
  auto leader = reg.Join(Key(1));
  EXPECT_EQ(leader.role, InflightSharing::Role::kLeader);
  auto follower = reg.Join(Key(1));
  EXPECT_EQ(follower.role, InflightSharing::Role::kFollower);
  // A different precise instance and a different CloudViews mode are
  // different executions — both elect fresh leaders.
  auto other_key = reg.Join(Key(2));
  EXPECT_EQ(other_key.role, InflightSharing::Role::kLeader);
  auto other_mode = reg.Join(Key(1, false));
  EXPECT_EQ(other_mode.role, InflightSharing::Role::kLeader);
  EXPECT_EQ(reg.NumPending(), 3u);

  reg.PublishFailure(leader, Status::Internal("test cleanup"));
  reg.PublishFailure(other_key, Status::Internal("test cleanup"));
  reg.PublishFailure(other_mode, Status::Internal("test cleanup"));
  EXPECT_EQ(reg.NumPending(), 0u);
}

TEST(InflightSharingTest, FollowersAdoptThePublishedOutcome) {
  InflightSharing reg;
  auto leader = reg.Join(Key(7));
  constexpr int kFollowers = 4;
  std::vector<InflightSharing::Outcome> got(kFollowers);
  std::vector<InflightSharing::Ticket> tickets;
  for (int i = 0; i < kFollowers; ++i) {
    tickets.push_back(reg.Join(Key(7)));
    EXPECT_EQ(tickets.back().role, InflightSharing::Role::kFollower);
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < kFollowers; ++i) {
    threads.emplace_back(
        [&reg, &got, &tickets, i] { got[i] = reg.WaitForLeader(tickets[i], 30); });
  }
  InflightSharing::Outcome out;
  out.leader_job_id = 42;
  out.run_stats.output_rows = 9;
  // The publish may beat some followers into WaitForLeader; the outcome
  // persists on the retired entry so they must still adopt it.
  EXPECT_LE(reg.PublishSuccess(leader, out), static_cast<size_t>(kFollowers));
  for (auto& t : threads) t.join();
  for (const auto& o : got) {
    EXPECT_TRUE(o.ok) << o.status.ToString();
    EXPECT_EQ(o.leader_job_id, 42u);
    EXPECT_EQ(o.run_stats.output_rows, 9);
  }
  EXPECT_EQ(reg.NumPending(), 0u);
}

TEST(InflightSharingTest, WaitTimesOutWhenLeaderNeverPublishes) {
  InflightSharing reg;
  auto leader = reg.Join(Key(3));
  auto follower = reg.Join(Key(3));
  auto out = reg.WaitForLeader(follower, 0.05);
  EXPECT_FALSE(out.ok);
  EXPECT_TRUE(out.status.IsExpired()) << out.status.ToString();
  reg.PublishFailure(leader, Status::Internal("test cleanup"));
  EXPECT_EQ(reg.NumPending(), 0u);
}

TEST(InflightSharingTest, FailureWakesFollowersAndFirstPublishWins) {
  InflightSharing reg;
  auto leader = reg.Join(Key(4));
  auto follower = reg.Join(Key(4));
  reg.PublishFailure(leader, Status::Internal("leader died"));
  auto out = reg.WaitForLeader(follower, 30);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.status.ToString().find("leader died"), std::string::npos);
  // A late success publish on the retired entry must not resurrect it or
  // rewrite the adopted outcome (first publish wins).
  InflightSharing::Outcome late;
  late.leader_job_id = 99;
  EXPECT_EQ(reg.PublishSuccess(leader, late), 0u);
  EXPECT_FALSE(reg.WaitForLeader(follower, 1).ok);
  EXPECT_EQ(reg.NumPending(), 0u);
}

TEST(InflightSharingTest, NextJoinAfterPublishStartsAFreshEntry) {
  InflightSharing reg;
  auto first = reg.Join(Key(5));
  reg.PublishSuccess(first, InflightSharing::Outcome{});
  // The entry retired with the publish; a late submission of the same key
  // must lead its own execution, not adopt a finished one.
  auto second = reg.Join(Key(5));
  EXPECT_EQ(second.role, InflightSharing::Role::kLeader);
  reg.PublishFailure(second, Status::Internal("test cleanup"));
  EXPECT_EQ(reg.NumPending(), 0u);
}

// --- MetadataService::WaitForMaterialized unit tests ------------------------

Hash128 H(uint64_t a, uint64_t b = 0) { return Hash128{a, b}; }

class PiggybackWaitTest : public ::testing::Test {
 protected:
  PiggybackWaitTest() : storage_(&clock_), service_(&clock_, &storage_) {}

  SimulatedClock clock_;
  StorageManager storage_;
  MetadataService service_;
};

TEST_F(PiggybackWaitTest, NoBuilderMeansImmediateNotFound) {
  EXPECT_TRUE(service_.WaitForMaterialized(H(10), 30).IsNotFound());
}

TEST_F(PiggybackWaitTest, LiveViewReturnsOkWithoutWaiting) {
  MaterializedViewInfo info;
  info.path = "/views/a/b_1.ss";
  info.normalized_signature = H(1);
  info.precise_signature = H(10);
  ASSERT_TRUE(service_.ReportMaterialized(info, 0).ok());
  EXPECT_TRUE(service_.WaitForMaterialized(H(10), 30).ok());
}

TEST_F(PiggybackWaitTest, WaitEndsWhenTheBuilderReports) {
  ASSERT_TRUE(service_.ProposeMaterialize(H(1), H(10), 1, 10));
  Status waited;
  std::thread waiter(
      [&] { waited = service_.WaitForMaterialized(H(10), 30); });
  MaterializedViewInfo info;
  info.path = "/views/a/b_1.ss";
  info.normalized_signature = H(1);
  info.precise_signature = H(10);
  info.producer_job_id = 1;
  ASSERT_TRUE(service_.ReportMaterialized(info, 0).ok());
  waiter.join();
  EXPECT_TRUE(waited.ok()) << waited.ToString();
}

TEST_F(PiggybackWaitTest, WaitEndsNotFoundWhenTheBuilderAbandons) {
  ASSERT_TRUE(service_.ProposeMaterialize(H(1), H(10), 1, 10));
  Status waited;
  std::thread waiter(
      [&] { waited = service_.WaitForMaterialized(H(10), 30); });
  service_.AbandonLock(H(10), 1);
  waiter.join();
  EXPECT_TRUE(waited.IsNotFound()) << waited.ToString();
}

TEST_F(PiggybackWaitTest, WaitTimesOutUnderALiveBuilder) {
  ASSERT_TRUE(service_.ProposeMaterialize(H(1), H(10), 1, 1000));
  Status waited = service_.WaitForMaterialized(H(10), 0.05);
  EXPECT_TRUE(waited.IsExpired()) << waited.ToString();
  service_.AbandonLock(H(10), 1);
}

TEST_F(PiggybackWaitTest, InjectedTimeoutFiresWithoutWaiting) {
  FaultInjector inj(7);
  FaultSpec spec;
  spec.trigger_every = 1;
  inj.Arm(fault::points::kSharingPiggybackTimeout, spec);
  service_.SetFaultInjector(&inj);
  ASSERT_TRUE(service_.ProposeMaterialize(H(1), H(10), 1, 1000));
  // A long budget that would stall the test for real; the injection must
  // short-circuit it instantly.
  Status waited = service_.WaitForMaterialized(H(10), 600);
  EXPECT_TRUE(waited.IsExpired()) << waited.ToString();
  service_.AbandonLock(H(10), 1);
}

// --- End-to-end job-service tests -------------------------------------------

JobDefinition RecurringJob(const std::string& date,
                           const std::string& out_suffix = "") {
  JobDefinition def;
  def.template_id = "jobA";
  def.cluster = "c1";
  def.business_unit = "bu1";
  def.vc = "vc1";
  def.user = "alice";
  def.recurrence_period = kSecondsPerDay;
  def.logical_plan = PlanBuilder::From(SharedAggPlan(date))
                         .Sort({{"n", false}})
                         .Output("jobA_out_" + date + out_suffix)
                         .Build();
  return def;
}

JobDefinition OverlappingJob(const std::string& date,
                             const std::string& out_suffix = "") {
  JobDefinition def;
  def.template_id = "jobB";
  def.cluster = "c1";
  def.business_unit = "bu1";
  def.vc = "vc2";
  def.user = "bob";
  def.recurrence_period = kSecondsPerDay;
  def.logical_plan = PlanBuilder::From(SharedAggPlan(date))
                         .Filter(Gt(Col("n"), Lit(int64_t{0})))
                         .Output("jobB_out_" + date + out_suffix)
                         .Build();
  return def;
}

void WriteDay(StorageManager* storage, const std::string& date,
              size_t rows = 2000) {
  WriteClickStream(storage, "clicks_" + date, rows,
                   std::hash<std::string>{}(date), date);
}

/// Sorted row-by-row equality of two output streams (possibly living in
/// different CloudViews instances).
void ExpectStreamsIdentical(StorageManager* a, const std::string& a_name,
                            StorageManager* b, const std::string& b_name) {
  auto ah = a->OpenStream(a_name);
  auto bh = b->OpenStream(b_name);
  ASSERT_TRUE(ah.ok()) << a_name;
  ASSERT_TRUE(bh.ok()) << b_name;
  Batch ab = CombineBatches((*ah)->schema, (*ah)->batches);
  Batch bb = CombineBatches((*bh)->schema, (*bh)->batches);
  ab = SortBatch(ab, {{"page", true}});
  bb = SortBatch(bb, {{"page", true}});
  ASSERT_EQ(ab.num_rows(), bb.num_rows());
  for (size_t r = 0; r < ab.num_rows(); ++r) {
    auto arow = ab.GetRow(r);
    auto brow = bb.GetRow(r);
    ASSERT_EQ(arow.size(), brow.size());
    for (size_t c = 0; c < arow.size(); ++c) {
      EXPECT_EQ(arow[c].Compare(brow[c]), 0) << "row " << r << " col " << c;
    }
  }
}

CloudViewsConfig SharingCvConfig() {
  CloudViewsConfig config;
  config.analyzer.selection.top_k = 1;
  config.analyzer.selection.min_frequency = 2;
  return config;
}

TEST(InflightSharingServiceTest, ConcurrentIdenticalJobsShareOneExecution) {
  CloudViews cv(SharingCvConfig());
  // A heavy input keeps the leader executing long enough that the other
  // submission threads (spawned microseconds apart) join as followers.
  WriteDay(cv.storage(), "2018-01-01", /*rows=*/30000);

  constexpr int kJobs = 8;
  std::vector<JobDefinition> defs(kJobs, RecurringJob("2018-01-01"));
  JobServiceOptions options;
  options.enable_inflight_sharing = true;
  auto results = cv.job_service()->SubmitConcurrent(defs, options);
  ASSERT_EQ(results.size(), static_cast<size_t>(kJobs));

  int followers = 0;
  for (auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->run_stats.output_rows, results[0]->run_stats.output_rows);
    if (r->shared_execution) {
      ++followers;
      EXPECT_NE(r->share_leader_job_id, 0u);
      EXPECT_NE(r->share_leader_job_id, r->job_id);
    }
  }
  // Leaders + degraded followers execute; adopted followers do not. The
  // counters must account for every submission either way.
  uint64_t leaders =
      cv.metrics()->GetCounter("cv_sharing_leader_total", {}, "")->value();
  uint64_t degraded =
      cv.metrics()
          ->GetCounter("cv_sharing_follower_degraded_total", {}, "")
          ->value();
  EXPECT_EQ(leaders + static_cast<uint64_t>(followers) + degraded,
            static_cast<uint64_t>(kJobs));
  EXPECT_GE(leaders, 1u);
  // Concurrent identical submissions must actually share: executions
  // (leaders + degraded) stay below the submission count.
  EXPECT_LT(leaders + degraded, static_cast<uint64_t>(kJobs));
  EXPECT_GE(followers, 1);
  // No leaked share entries once every submission returned.
  EXPECT_EQ(cv.job_service()->inflight_sharing().NumPending(), 0u);
  // Every submission still lands in the workload repository (the feedback
  // loop sees followers too).
  EXPECT_EQ(cv.repository()->NumJobs(), static_cast<size_t>(kJobs));

  // Byte-identity: an independent no-sharing instance over the same input
  // produces the same output.
  CloudViews baseline(SharingCvConfig());
  WriteDay(baseline.storage(), "2018-01-01", /*rows=*/30000);
  ASSERT_TRUE(baseline.Submit(RecurringJob("2018-01-01"), false).ok());
  ExpectStreamsIdentical(cv.storage(), "jobA_out_2018-01-01",
                         baseline.storage(), "jobA_out_2018-01-01");
}

TEST(InflightSharingServiceTest, LeaderCrashDegradesFollowersNotFails) {
  FaultInjector inj(13);
  FaultSpec spec;
  spec.trigger_every = 1;
  spec.max_fires = 1;
  spec.crash = true;
  spec.message = "leader process died";
  inj.Arm(fault::points::kSharingLeaderCrash, spec);

  CloudViewsConfig config = SharingCvConfig();
  config.fault = &inj;
  CloudViews cv(config);
  WriteDay(cv.storage(), "2018-01-01");

  constexpr int kJobs = 6;
  std::vector<JobDefinition> defs(kJobs, RecurringJob("2018-01-01"));
  JobServiceOptions options;
  options.enable_inflight_sharing = true;
  auto results = cv.job_service()->SubmitConcurrent(defs, options);

  int failed = 0, succeeded = 0;
  for (auto& r : results) {
    if (r.ok()) {
      ++succeeded;
    } else {
      ++failed;
      EXPECT_NE(r.status().ToString().find("leader process died"),
                std::string::npos)
          << r.status().ToString();
    }
  }
  // Exactly the crashed leader fails; every follower degrades to
  // independent execution and succeeds.
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(succeeded, kJobs - 1);
  EXPECT_GE(
      cv.metrics()
          ->GetCounter("cv_sharing_leader_failures_total", {}, "")
          ->value(),
      1u);
  EXPECT_EQ(cv.job_service()->inflight_sharing().NumPending(), 0u);

  // The surviving output is still byte-identical to a clean run.
  CloudViews baseline(SharingCvConfig());
  WriteDay(baseline.storage(), "2018-01-01");
  ASSERT_TRUE(baseline.Submit(RecurringJob("2018-01-01"), false).ok());
  ExpectStreamsIdentical(cv.storage(), "jobA_out_2018-01-01",
                         baseline.storage(), "jobA_out_2018-01-01");
}

/// Harness for the piggyback end-to-end tests: day-1 history + analysis so
/// day-2 submissions want to materialize the shared aggregate, whose
/// build lock the test then holds as a synthetic job 9999.
class PiggybackServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Replay the same history in a donor instance and let it materialize
    // the day-2 view for real, then harvest the build-lock signatures and
    // the exact view bytes a real builder produces. (The annotation is
    // mined from the *optimized* subtree, so recomputing its signatures
    // from the logical plan by hand would not match.)
    CloudViews donor(SharingCvConfig());
    WriteDay(donor.storage(), "2018-01-01");
    ASSERT_TRUE(donor.Submit(RecurringJob("2018-01-01")).ok());
    ASSERT_TRUE(donor.Submit(OverlappingJob("2018-01-01")).ok());
    ASSERT_EQ(donor.RunAnalyzerAndLoad().annotations.size(), 1u);
    WriteDay(donor.storage(), "2018-01-02");
    auto built = donor.Submit(RecurringJob("2018-01-02"));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_EQ(built->views_materialized, 1);
    auto views = donor.metadata()->ListViews();
    ASSERT_EQ(views.size(), 1u);
    donor_view_ = views[0];
    auto stream = donor.storage()->OpenStream(donor_view_.path);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    view_stream_ = *stream;

    // The instance under test sees the same history but stops short of
    // day 2 — the synthetic foreign builder (job 9999) steps in there.
    WriteDay(cv_.storage(), "2018-01-01");
    ASSERT_TRUE(cv_.Submit(RecurringJob("2018-01-01")).ok());
    ASSERT_TRUE(cv_.Submit(OverlappingJob("2018-01-01")).ok());
    ASSERT_EQ(cv_.RunAnalyzerAndLoad().annotations.size(), 1u);
    WriteDay(cv_.storage(), "2018-01-02");
    sigs_.normalized = donor_view_.normalized_signature;
    sigs_.precise = donor_view_.precise_signature;
  }

  /// Takes the day-2 build lock as job 9999 so real submissions get denied.
  void HoldLockAsForeignBuilder(double expected_build_seconds = 9999) {
    ASSERT_TRUE(cv_.metadata()->ProposeMaterialize(
        sigs_.normalized, sigs_.precise, 9999, expected_build_seconds));
  }

  /// Spins until at least `n` lock denials happened — i.e. the submission
  /// under test hit the held lock and is about to piggyback (the wait
  /// itself re-checks state, so winning this race is not required for
  /// correctness, only for making the test exercise the intended path).
  void AwaitLockDenials(uint64_t n) {
    while (cv_.metadata()->counters().locks_denied < n) {
      std::this_thread::yield();
    }
  }

  /// Transplants the donor's real view bytes into this instance and
  /// registers them as job 9999's view (the test stands in for the
  /// builder's early materialization).
  void RegisterViewAsForeignBuilder() {
    std::string path = "/views/" + sigs_.normalized.ToHex() + "/" +
                       sigs_.precise.ToHex() + "_9999.ss";
    ASSERT_TRUE(cv_.storage()
                    ->WriteStream(MakeStreamData(
                        path, "guid-piggyback-view", view_stream_->schema,
                        view_stream_->batches, cv_.clock()->Now()))
                    .ok());
    MaterializedViewInfo info = donor_view_;
    info.path = path;
    info.producer_job_id = 9999;
    ASSERT_TRUE(cv_.metadata()->ReportMaterialized(info, 0).ok());
  }

  CloudViews cv_{SharingCvConfig()};
  SubgraphSignatures sigs_;
  MaterializedViewInfo donor_view_;
  StreamHandle view_stream_;
};

TEST_F(PiggybackServiceTest, DeniedJobPiggybacksOnTheBuildersView) {
  HoldLockAsForeignBuilder();
  JobServiceOptions options;
  options.enable_cloudviews = true;
  options.enable_piggyback = true;
  Result<JobResult> result = Status::Internal("not run");
  std::thread submitter([&] {
    result = cv_.job_service()->SubmitJob(OverlappingJob("2018-01-02"),
                                          options);
  });
  AwaitLockDenials(1);
  RegisterViewAsForeignBuilder();
  submitter.join();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->piggyback_waits, 1);
  EXPECT_EQ(result->piggyback_hits, 1);
  EXPECT_EQ(result->piggyback_timeouts, 0);
  EXPECT_EQ(result->piggyback_abandoned, 0);
  // The re-optimized plan read the freshly registered view instead of
  // recomputing the aggregate reuse-blind.
  EXPECT_EQ(result->views_reused, 1);
  EXPECT_EQ(result->views_materialized, 0);
  EXPECT_FALSE(result->plan_cache_hit);

  // Byte-identity against a reuse-blind run of the same job.
  auto blind = cv_.Submit(OverlappingJob("2018-01-02", "_blind"), false);
  ASSERT_TRUE(blind.ok());
  ExpectStreamsIdentical(cv_.storage(), "jobB_out_2018-01-02", cv_.storage(),
                         "jobB_out_2018-01-02_blind");
}

TEST_F(PiggybackServiceTest, AbandonedBuilderFallsBackToBlindPlan) {
  HoldLockAsForeignBuilder();
  JobServiceOptions options;
  options.enable_cloudviews = true;
  options.enable_piggyback = true;
  Result<JobResult> result = Status::Internal("not run");
  std::thread submitter([&] {
    result = cv_.job_service()->SubmitJob(OverlappingJob("2018-01-02"),
                                          options);
  });
  AwaitLockDenials(1);
  cv_.metadata()->AbandonLock(sigs_.precise, 9999);
  submitter.join();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->piggyback_waits, 1);
  EXPECT_EQ(result->piggyback_hits, 0);
  EXPECT_EQ(result->piggyback_abandoned, 1);
  // Do no harm: the job kept its reuse-blind plan and still succeeded.
  EXPECT_EQ(result->views_reused, 0);
  EXPECT_TRUE(cv_.storage()->StreamExists("jobB_out_2018-01-02"));
}

TEST_F(PiggybackServiceTest, WaitBudgetExpiryKeepsTheBlindPlan) {
  HoldLockAsForeignBuilder();
  JobServiceOptions options;
  options.enable_cloudviews = true;
  options.enable_piggyback = true;
  options.piggyback_wait_seconds = 0.05;
  auto result =
      cv_.job_service()->SubmitJob(OverlappingJob("2018-01-02"), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->piggyback_waits, 1);
  EXPECT_EQ(result->piggyback_timeouts, 1);
  EXPECT_EQ(result->piggyback_hits, 0);
  EXPECT_EQ(result->views_reused, 0);
  EXPECT_TRUE(cv_.storage()->StreamExists("jobB_out_2018-01-02"));
  cv_.metadata()->AbandonLock(sigs_.precise, 9999);
}

TEST_F(PiggybackServiceTest, InjectedTimeoutShortCircuitsTheWait) {
  FaultInjector inj(29);
  FaultSpec spec;
  spec.trigger_every = 1;
  inj.Arm(fault::points::kSharingPiggybackTimeout, spec);
  cv_.metadata()->SetFaultInjector(&inj);

  HoldLockAsForeignBuilder();
  JobServiceOptions options;
  options.enable_cloudviews = true;
  options.enable_piggyback = true;
  // A budget that would stall the test for real if the injection missed.
  options.piggyback_wait_seconds = 600;
  auto result =
      cv_.job_service()->SubmitJob(OverlappingJob("2018-01-02"), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->piggyback_waits, 1);
  EXPECT_EQ(result->piggyback_timeouts, 1);
  EXPECT_EQ(result->views_reused, 0);
  EXPECT_TRUE(cv_.storage()->StreamExists("jobB_out_2018-01-02"));
  cv_.metadata()->AbandonLock(sigs_.precise, 9999);
}

TEST_F(PiggybackServiceTest, BuildersNeverPiggybackOnThemselves) {
  // No foreign lock: the first submission wins the build lock itself.
  // A builder must not enter the piggyback wait (deadlock avoidance).
  JobServiceOptions options;
  options.enable_cloudviews = true;
  options.enable_piggyback = true;
  auto result =
      cv_.job_service()->SubmitJob(RecurringJob("2018-01-02"), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->views_materialized, 1);
  EXPECT_EQ(result->piggyback_waits, 0);
}

}  // namespace
}  // namespace cloudviews
