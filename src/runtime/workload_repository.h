#ifndef CLOUDVIEWS_RUNTIME_WORKLOAD_REPOSITORY_H_
#define CLOUDVIEWS_RUNTIME_WORKLOAD_REPOSITORY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "exec/operator_stats.h"
#include "obs/metrics.h"
#include "optimizer/view_interfaces.h"
#include "plan/plan_node.h"

namespace cloudviews {

/// \brief One executed job: its metadata, the compiled physical plan, and
/// the observed runtime statistics — exactly what the SCOPE workload
/// repository retains and the analyzer mines (Fig 6, left).
struct JobRecord {
  uint64_t job_id = 0;
  std::string cluster;
  std::string business_unit;
  std::string vc;
  std::string user;
  /// Recurring template identity ("same script template, new data").
  std::string template_id;
  int recurring_instance = 0;
  /// Cadence of the template (hourly/daily/weekly); drives lineage-based
  /// view expiry (Sec 5.4).
  LogicalTime recurrence_period = kSecondsPerDay;
  LogicalTime submit_time = 0;
  /// Tags for the metadata service's inverted index.
  std::vector<std::string> tags;
  /// Executed physical plan with node ids assigned.
  PlanNodePtr plan;
  JobRunStats run_stats;
};

/// \brief Store of executed jobs + an incrementally-maintained feedback
/// index from normalized subgraph signature to observed statistics.
///
/// Implements StatsProviderInterface: this is the data source of the
/// CloudViews feedback loop (Sec 5.1) — it reconciles the compile-time
/// query trees (plan nodes) with run-time statistics (per-operator stats)
/// by joining them on node ids, then keys the result by normalized
/// signature so *any* future job with a common subgraph benefits.
class WorkloadRepository : public StatsProviderInterface {
 public:
  /// Instrument handles; any subset may be null (uninstrumented).
  struct Instruments {
    obs::Counter* jobs_ingested = nullptr;
    obs::Counter* subgraphs_observed = nullptr;
    obs::Counter* lookups = nullptr;
    obs::Counter* lookup_hits = nullptr;
    obs::Gauge* indexed_subgraphs = nullptr;
  };

  /// Publishes ingest counters (jobs, indexed subgraphs, feedback
  /// lookups) into `metrics`. Call before concurrent use.
  void SetMetrics(obs::MetricsRegistry* metrics) EXCLUDES(mu_);

  /// Installs instrument handles directly. Unlike SetMetrics, any subset
  /// may be wired — every handle is null-checked independently at use
  /// (regression: the indexed-subgraphs gauge update used to hide behind
  /// the observation counter's null check and crashed when only the
  /// counter was wired). Call before concurrent use.
  void SetInstruments(const Instruments& instruments) EXCLUDES(mu_);

  void AddJob(JobRecord record) EXCLUDES(mu_);

  size_t NumJobs() const EXCLUDES(mu_);
  /// Snapshot of all records (shared pointers; records are immutable once
  /// added).
  std::vector<std::shared_ptr<const JobRecord>> Jobs() const EXCLUDES(mu_);
  std::vector<std::shared_ptr<const JobRecord>> JobsInWindow(
      LogicalTime from, LogicalTime to) const EXCLUDES(mu_);

  // StatsProviderInterface:
  std::optional<SubgraphObservedStats> Lookup(
      const Hash128& normalized_signature) const override EXCLUDES(mu_);

  /// Number of distinct subgraph templates with observed statistics.
  size_t NumIndexedSubgraphs() const EXCLUDES(mu_);

 private:
  struct Accumulator {
    double rows = 0, bytes = 0, latency = 0, cpu = 0;
    int64_t n = 0;
  };

  Instruments obs_;

  /// Guards the job history and the feedback index together: AddJob must
  /// publish a record and its statistics atomically so concurrent Lookup
  /// calls never see a half-applied observation.
  mutable Mutex mu_;
  std::vector<std::shared_ptr<const JobRecord>> jobs_ GUARDED_BY(mu_);
  std::unordered_map<Hash128, Accumulator, Hash128Hasher> feedback_
      GUARDED_BY(mu_);
};

/// CPU seconds of the subtree rooted at `node` (pre-order node ids must be
/// assigned; exploits their contiguity within a subtree).
double SubtreeCpuSeconds(const PlanNode& node, const PlanRuntimeStats& stats);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_RUNTIME_WORKLOAD_REPOSITORY_H_
