// Microbenchmarks: signature computation and subgraph enumeration
// throughput (the analyzer and compiler hot paths).
#include <benchmark/benchmark.h>

#include "plan/plan_builder.h"
#include "signature/signature.h"

namespace cloudviews {
namespace {

Schema MicroSchema() {
  return Schema({{"k", DataType::kInt64},
                 {"s", DataType::kString},
                 {"v", DataType::kDouble},
                 {"d", DataType::kDate}});
}

/// Chain of `depth` filter/project pairs over a scan.
PlanNodePtr DeepPlan(int depth) {
  PlanBuilder b = PlanBuilder::Extract("in_{date}", "in_2018-01-01", "g",
                                       MicroSchema());
  for (int i = 0; i < depth; ++i) {
    b = std::move(b).Filter(
        Gt(Col("k"), Lit(static_cast<int64_t>(i))));
    b = std::move(b).Project({{Col("k"), "k"},
                              {Col("s"), "s"},
                              {Col("v"), "v"},
                              {Col("d"), "d"}});
  }
  auto plan = std::move(b).Build();
  Status st = plan->Bind();
  (void)st;
  return plan;
}

void BM_PreciseSignature(benchmark::State& state) {
  auto plan = DeepPlan(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan->SubtreeHash(SignatureMode::kPrecise));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan->SubtreeSize()));
}
BENCHMARK(BM_PreciseSignature)->Arg(4)->Arg(16)->Arg(64);

void BM_NormalizedSignature(benchmark::State& state) {
  auto plan = DeepPlan(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan->SubtreeHash(SignatureMode::kNormalized));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan->SubtreeSize()));
}
BENCHMARK(BM_NormalizedSignature)->Arg(4)->Arg(16)->Arg(64);

void BM_EnumerateSubgraphs(benchmark::State& state) {
  auto plan = DeepPlan(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto subgraphs = EnumerateSubgraphs(plan);
    benchmark::DoNotOptimize(subgraphs.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan->SubtreeSize()));
}
BENCHMARK(BM_EnumerateSubgraphs)->Arg(4)->Arg(16)->Arg(64);

void BM_HashBuilderThroughput(benchmark::State& state) {
  for (auto _ : state) {
    HashBuilder hb;
    for (int i = 0; i < 64; ++i) hb.Add(static_cast<uint64_t>(i));
    benchmark::DoNotOptimize(hb.Finish());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_HashBuilderThroughput);

}  // namespace
}  // namespace cloudviews
