file(REMOVE_RECURSE
  "CMakeFiles/fig03_overlap_cdfs.dir/fig03_overlap_cdfs.cc.o"
  "CMakeFiles/fig03_overlap_cdfs.dir/fig03_overlap_cdfs.cc.o.d"
  "fig03_overlap_cdfs"
  "fig03_overlap_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_overlap_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
