// TPC-DS demo: run the 99-query benchmark twice — plain, then with
// CloudViews reusing the top-10 overlapping computations (the Sec 7.2
// experiment, at laptop scale).
#include <cstdio>

#include "core/cloudviews.h"
#include "tpcds/tpcds.h"

using namespace cloudviews;

int main(int argc, char** argv) {
  int num_queries = tpcds::kNumQueries;
  if (argc > 1) {
    num_queries = std::min(tpcds::kNumQueries, std::max(1, atoi(argv[1])));
  }

  CloudViewsConfig config;
  config.analyzer.selection.top_k = 10;
  config.analyzer.selection.min_frequency = 3;
  CloudViews cv(config);

  std::printf("generating TPC-DS-lite tables...\n");
  tpcds::TpcdsGenerator gen;
  Status st = gen.WriteTables(cv.storage());
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  for (const auto& table :
       {"store_sales", "web_sales", "catalog_sales", "date_dim", "item",
        "customer", "store", "promotion"}) {
    auto handle = cv.storage()->OpenStream(tpcds::TableStream(table));
    std::printf("  %-14s %8lld rows\n", table,
                static_cast<long long>((*handle)->total_rows));
  }

  std::printf("\nbaseline pass (%d queries)...\n", num_queries);
  double baseline_total = 0;
  for (int q = 1; q <= num_queries; ++q) {
    auto r = cv.Submit(tpcds::MakeQueryJob(q), false);
    if (!r.ok()) {
      std::fprintf(stderr, "q%d: %s\n", q, r.status().ToString().c_str());
      return 1;
    }
    baseline_total += r->run_stats.latency_seconds;
  }

  auto analysis = cv.RunAnalyzerAndLoad();
  std::printf("analyzer selected %zu overlapping computations "
              "(%zu subgraphs mined from %zu queries)\n",
              analysis.annotations.size(), analysis.subgraphs_mined,
              analysis.jobs_analyzed);

  std::printf("\nCloudViews pass...\n");
  double cv_total = 0;
  int improved = 0, built = 0;
  for (int q = 1; q <= num_queries; ++q) {
    auto r = cv.Submit(tpcds::MakeQueryJob(q), true);
    if (!r.ok()) {
      std::fprintf(stderr, "q%d: %s\n", q, r.status().ToString().c_str());
      return 1;
    }
    cv_total += r->run_stats.latency_seconds;
    built += r->views_materialized;
  }

  // Per-query comparison needs a second identical baseline-ordered pass;
  // keep the demo simple and compare totals.
  improved = 0;
  std::printf("\nresults\n");
  std::printf("  baseline total   %8.1fms\n", baseline_total * 1000);
  std::printf("  cloudviews total %8.1fms (%d views built)\n",
              cv_total * 1000, built);
  std::printf("  total improvement %+.1f%%  (paper: 17%% on the real 1TB "
              "benchmark)\n",
              100.0 * (baseline_total - cv_total) / baseline_total);
  (void)improved;
  return 0;
}
