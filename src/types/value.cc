#include "types/value.h"

#include <cassert>
#include <cstdio>

#include "common/string_util.h"

namespace cloudviews {

namespace {

// Civil-day <-> epoch-day conversion (Howard Hinnant's algorithms).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153 * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) -
         719468;
}

void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = static_cast<int>(yy + (*m <= 2));
}

}  // namespace

std::string FormatDate(int64_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return StrFormat("%04d-%02d-%02d", y, m, d);
}

bool ParseDate(const std::string& iso, int64_t* days) {
  int y, m, d;
  if (std::sscanf(iso.c_str(), "%d-%d-%d", &y, &m, &d) != 3) return false;
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  *days = DaysFromCivil(y, m, d);
  return true;
}

Value Value::DateFromString(const std::string& iso) {
  int64_t days;
  if (!ParseDate(iso, &days)) return Value::Null(DataType::kDate);
  return Value::Date(days);
}

double Value::AsDouble() const {
  assert(!null_);
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case DataType::kInt64:
    case DataType::kDate:
      return static_cast<double>(std::get<int64_t>(payload_));
    case DataType::kDouble:
      return double_value();
    case DataType::kString:
      assert(false && "AsDouble on string value");
      return 0;
  }
  return 0;
}

int Value::Compare(const Value& other) const {
  if (null_ || other.null_) {
    if (null_ && other.null_) return 0;
    return null_ ? -1 : 1;
  }
  if (type_ == DataType::kString || other.type_ == DataType::kString) {
    assert(type_ == other.type_ && "comparing string with non-string");
    return string_value().compare(other.string_value());
  }
  if (type_ == other.type_ && type_ != DataType::kDouble) {
    int64_t a = type_ == DataType::kBool ? (bool_value() ? 1 : 0)
                                         : std::get<int64_t>(payload_);
    int64_t b = other.type_ == DataType::kBool
                    ? (other.bool_value() ? 1 : 0)
                    : std::get<int64_t>(other.payload_);
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  double a = AsDouble();
  double b = other.AsDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

void Value::HashInto(HashBuilder* hb) const {
  if (null_) {
    hb->Add(uint64_t{0xdeadULL});
    return;
  }
  switch (type_) {
    case DataType::kBool:
      hb->Add(bool_value());
      break;
    case DataType::kInt64:
    case DataType::kDate:
      hb->Add(std::get<int64_t>(payload_));
      break;
    case DataType::kDouble:
      hb->Add(double_value());
      break;
    case DataType::kString:
      hb->Add(std::string_view(string_value()));
      break;
  }
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(int64_value());
    case DataType::kDouble:
      return StrFormat("%g", double_value());
    case DataType::kString:
      return "\"" + string_value() + "\"";
    case DataType::kDate:
      return FormatDate(date_value());
  }
  return "?";
}

int64_t Value::ByteSize() const {
  if (type_ == DataType::kString && !null_) {
    return static_cast<int64_t>(string_value().size()) + 8;
  }
  return DataTypeWidth(type_);
}

}  // namespace cloudviews
