#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace cloudviews {
namespace {

Result<int> Parse(bool ok) {
  if (ok) return 7;
  return Status::ParseError("bad token");
}

// Error-access semantics: touching the value of an errored Result aborts
// with the underlying status in EVERY build type (the debug assert was
// promoted to an unconditional abort so release builds fail loudly instead
// of reading the wrong variant alternative).

TEST(ResultDeathTest, ValueOrDieOnErrorAborts) {
  auto result = Parse(false);
  EXPECT_FALSE(result.ok());
  EXPECT_DEATH((void)result.ValueOrDie(), "ValueOrDie on errored Result");
}

TEST(ResultDeathTest, DereferenceOnErrorAborts) {
  auto result = Parse(false);
  EXPECT_DEATH((void)*result, "Parse error: bad token");
}

TEST(ResultDeathTest, ArrowOnErrorAborts) {
  Result<std::string> result(Status::NotFound("no stream"));
  EXPECT_DEATH((void)result->size(), "Not found: no stream");
}

TEST(ResultDeathTest, MoveAccessOnErrorAborts) {
  EXPECT_DEATH((void)std::move(Parse(false)).ValueOrDie(),
               "ValueOrDie on errored Result");
}

TEST(ResultDeathTest, ConstructedFromOkStatusAborts) {
  EXPECT_DEATH(Result<int> bad{Status::OK()},
               "Result constructed from OK status");
}

// The happy paths stay [[nodiscard]]-clean: every access consumes the
// value or explicitly voids it.

TEST(ResultDeathTest, OkAccessPathsAreNodiscardClean) {
  auto result = Parse(true);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.ValueOrDie(), 7);
  EXPECT_EQ(*result, 7);
  int moved = std::move(result).ValueOrDie();
  EXPECT_EQ(moved, 7);
}

TEST(ResultDeathTest, ErrorStatusIsPreserved) {
  auto result = Parse(false);
  EXPECT_TRUE(result.status().IsParseError());
  EXPECT_EQ(result.status().message(), "bad token");
}

}  // namespace
}  // namespace cloudviews
