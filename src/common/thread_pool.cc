#include "common/thread_pool.h"

#include <ctime>

namespace cloudviews {

double ThreadCpuSeconds() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

ThreadPool::ThreadPool(int threads, obs::MetricsRegistry* metrics,
                       const std::string& name, MonotonicClock* clock)
    : clock_(clock != nullptr ? clock : MonotonicClock::Real()) {
  if (threads < 1) threads = 1;
  if (metrics != nullptr) {
    obs::Labels labels = {{"pool", name}};
    obs_.threads = metrics->GetGauge("cv_threadpool_threads", labels,
                                     "Worker threads in the pool");
    obs_.queue_depth =
        metrics->GetGauge("cv_threadpool_queue_depth", labels,
                          "Tasks enqueued but not yet started");
    obs_.busy_workers =
        metrics->GetGauge("cv_threadpool_busy_workers", labels,
                          "Threads currently running a task (saturation "
                          "when equal to cv_threadpool_threads)");
    obs_.tasks = metrics->GetCounter("cv_threadpool_tasks_total", labels,
                                     "Tasks executed");
    obs_.task_wait = metrics->GetHistogram(
        "cv_threadpool_task_wait_seconds", labels, {},
        "Delay between task enqueue and start");
    obs_.task_run =
        metrics->GetHistogram("cv_threadpool_task_run_seconds", labels, {},
                              "Task execution wall time");
    obs_.threads->Set(threads);
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  QueuedTask queued;
  queued.fn = std::move(task);
  if (obs_.task_wait != nullptr) queued.enqueued_at = clock_->NowSeconds();
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(queued));
  }
  if (obs_.queue_depth != nullptr) obs_.queue_depth->Add(1);
  cv_.NotifyOne();
}

void ThreadPool::RunTask(QueuedTask task) {
  if (obs_.tasks == nullptr) {
    task.fn();
    return;
  }
  double start = clock_->NowSeconds();
  obs_.task_wait->Observe(start - task.enqueued_at);
  obs_.busy_workers->Add(1);
  task.fn();
  obs_.busy_workers->Add(-1);
  obs_.task_run->Observe(clock_->NowSeconds() - start);
  obs_.tasks->Increment();
}

bool ThreadPool::RunOne() {
  QueuedTask task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  if (obs_.queue_depth != nullptr) obs_.queue_depth->Add(-1);
  RunTask(std::move(task));
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (obs_.queue_depth != nullptr) obs_.queue_depth->Add(-1);
    RunTask(std::move(task));
  }
}

void TaskGroup::Spawn(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  pool_->Enqueue([this, fn = std::move(fn)] {
    fn();
    // Decrement and notify under the lock: the waiter may destroy this
    // group the moment it observes pending_ == 0.
    MutexLock lock(mu_);
    if (--pending_ == 0) done_cv_.NotifyAll();
  });
}

void TaskGroup::Wait() {
  if (pool_ == nullptr) return;
  for (;;) {
    {
      MutexLock lock(mu_);
      if (pending_ == 0) return;
    }
    if (!pool_->RunOne()) {
      // Queue momentarily empty: our remaining tasks are running on other
      // threads. The short timeout re-polls the queue in case a nested
      // group enqueued more work we could help with; Wait's caller loop
      // re-checks pending_ after any wakeup.
      MutexLock lock(mu_);
      if (pending_ == 0) return;
      done_cv_.WaitFor(mu_, std::chrono::milliseconds(1));
      if (pending_ == 0) return;
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || n < 2) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  TaskGroup group(pool);
  for (size_t i = 0; i < n; ++i) {
    group.Spawn([&fn, i] { fn(i); });
  }
  group.Wait();
}

}  // namespace cloudviews
