#ifndef CLOUDVIEWS_OBS_JSON_H_
#define CLOUDVIEWS_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cloudviews {
namespace obs {

/// \brief Minimal streaming JSON writer (no DOM, no dependencies) used for
/// profile artifacts and bench output. Handles commas, nesting, and string
/// escaping; numbers are rendered with enough precision to round-trip.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Next value inside an object gets this key.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document built so far; call after closing every scope.
  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open scope: true = first element not yet written.
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

/// Escapes a string per JSON (quotes not included).
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_JSON_H_
