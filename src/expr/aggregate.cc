#include "expr/aggregate.h"

namespace cloudviews {

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

bool AggFuncFromString(const std::string& name, AggFunc* out) {
  if (name == "COUNT" || name == "count") {
    *out = AggFunc::kCount;
  } else if (name == "SUM" || name == "sum") {
    *out = AggFunc::kSum;
  } else if (name == "MIN" || name == "min") {
    *out = AggFunc::kMin;
  } else if (name == "MAX" || name == "max") {
    *out = AggFunc::kMax;
  } else if (name == "AVG" || name == "avg") {
    *out = AggFunc::kAvg;
  } else {
    return false;
  }
  return true;
}

Result<DataType> AggregateSpec::Bind(const Schema& input) const {
  if (!arg) {
    if (func != AggFunc::kCount) {
      return Status::TypeError("only COUNT may omit its argument");
    }
    return DataType::kInt64;
  }
  CV_RETURN_NOT_OK(arg->Bind(input));
  DataType at = arg->output_type();
  switch (func) {
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kSum:
      if (at == DataType::kString || at == DataType::kBool) {
        return Status::TypeError("SUM requires a numeric argument");
      }
      return at == DataType::kDouble ? DataType::kDouble : DataType::kInt64;
    case AggFunc::kAvg:
      if (at == DataType::kString || at == DataType::kBool) {
        return Status::TypeError("AVG requires a numeric argument");
      }
      return DataType::kDouble;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return at;
  }
  return Status::Internal("unknown aggregate function");
}

void AggregateSpec::HashInto(HashBuilder* hb, SignatureMode mode) const {
  hb->Add(static_cast<int>(func));
  hb->Add(std::string_view(output_name));
  if (arg) {
    hb->Add(true);
    arg->HashInto(hb, mode);
  } else {
    hb->Add(false);
  }
}

std::string AggregateSpec::ToString() const {
  std::string inner = arg ? arg->ToString() : "*";
  return std::string(AggFuncToString(func)) + "(" + inner + ") AS " +
         output_name;
}

AggregateSpec AggregateSpec::Clone() const {
  return AggregateSpec{func, arg ? arg->Clone() : nullptr, output_name};
}

void AggState::Update(const Value& v) {
  if (v.is_null()) return;
  ++count_;
  switch (func_) {
    case AggFunc::kCount:
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (v.type() == DataType::kInt64) {
        isum_ += v.int64_value();
        sum_ += static_cast<double>(v.int64_value());
      } else {
        sum_ += v.AsDouble();
      }
      break;
    case AggFunc::kMin:
      if (!any_ || v.Compare(min_) < 0) min_ = v;
      break;
    case AggFunc::kMax:
      if (!any_ || v.Compare(max_) > 0) max_ = v;
      break;
  }
  any_ = true;
}

Value AggState::Finish(DataType output_type) const {
  switch (func_) {
    case AggFunc::kCount:
      return Value::Int64(count_);
    case AggFunc::kSum:
      if (!any_) return Value::Null(output_type);
      return output_type == DataType::kInt64 ? Value::Int64(isum_)
                                             : Value::Double(sum_);
    case AggFunc::kAvg:
      if (count_ == 0) return Value::Null(DataType::kDouble);
      return Value::Double(sum_ / static_cast<double>(count_));
    case AggFunc::kMin:
      return any_ ? min_ : Value::Null(output_type);
    case AggFunc::kMax:
      return any_ ? max_ : Value::Null(output_type);
  }
  return Value::Null(output_type);
}

}  // namespace cloudviews
