#include <gtest/gtest.h>

#include "parser/parser.h"
#include "signature/signature.h"

namespace cloudviews {
namespace {

const char* kScript = R"(
-- A typical recurring script template.
clicks = EXTRACT user:int, page:string, latency:int, when:date
         FROM "clicks_{date}";
recent = SELECT user, page, latency FROM clicks
         WHERE when >= @date AND latency > 10;
agg    = SELECT page, COUNT(*) AS n, AVG(latency) AS avg_latency
         FROM recent GROUP BY page;
OUTPUT agg TO "page_stats_{date}";
)";

ParamMap DayParams(const std::string& iso) {
  ParamMap params;
  params["date"] = DateParam(iso);
  return params;
}

Result<PlanNodePtr> ParseDay(const std::string& script,
                             const std::string& iso) {
  ScopeScriptParser parser;
  return parser.Parse(script, DayParams(iso), [](const std::string& name) {
    return "guid-of-" + name;
  });
}

TEST(ParserTest, FullScriptParsesAndBinds) {
  auto plan = ParseDay(kScript, "2018-01-01");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE((*plan)->Bind().ok());
  EXPECT_EQ((*plan)->kind(), OpKind::kOutput);
  EXPECT_EQ(static_cast<OutputNode*>(plan->get())->stream_name(),
            "page_stats_2018-01-01");
  EXPECT_EQ((*plan)->output_schema().ToString(),
            "page:string, n:int64, avg_latency:double");
}

TEST(ParserTest, TemplateInterpolationAndGuids) {
  auto plan = ParseDay(kScript, "2018-02-03");
  ASSERT_TRUE(plan.ok());
  std::vector<PlanNode*> nodes;
  CollectNodes(*plan, &nodes);
  bool found = false;
  for (PlanNode* n : nodes) {
    if (n->kind() == OpKind::kExtract) {
      auto* e = static_cast<ExtractNode*>(n);
      EXPECT_EQ(e->template_name(), "clicks_{date}");
      EXPECT_EQ(e->stream_name(), "clicks_2018-02-03");
      EXPECT_EQ(e->guid(), "guid-of-clicks_2018-02-03");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ParserTest, RecurringInstancesShareNormalizedSignature) {
  auto day1 = ParseDay(kScript, "2018-01-01");
  auto day2 = ParseDay(kScript, "2018-01-02");
  ASSERT_TRUE(day1.ok());
  ASSERT_TRUE(day2.ok());
  ASSERT_TRUE((*day1)->Bind().ok());
  ASSERT_TRUE((*day2)->Bind().ok());
  EXPECT_EQ((*day1)->SubtreeHash(SignatureMode::kNormalized),
            (*day2)->SubtreeHash(SignatureMode::kNormalized));
  EXPECT_NE((*day1)->SubtreeHash(SignatureMode::kPrecise),
            (*day2)->SubtreeHash(SignatureMode::kPrecise));
}

TEST(ParserTest, JoinAndLeftJoin) {
  const char* script = R"(
a = EXTRACT k:int, v:string FROM "a";
b = EXTRACT k2:int, w:string FROM "b";
j = SELECT v, w AS w2 FROM a JOIN b ON k == k2;
OUTPUT j TO "out";
)";
  ScopeScriptParser parser;
  auto plan = parser.Parse(script, {});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE((*plan)->Bind().ok());

  const char* left = R"(
a = EXTRACT k:int, v:string FROM "a";
b = EXTRACT k2:int, w:string FROM "b";
j = SELECT v, w AS w2 FROM a LEFT JOIN b ON k == k2;
OUTPUT j TO "out";
)";
  auto lplan = parser.Parse(left, {});
  ASSERT_TRUE(lplan.ok());
  std::vector<PlanNode*> nodes;
  CollectNodes(*lplan, &nodes);
  bool saw_left = false;
  for (PlanNode* n : nodes) {
    if (n->kind() == OpKind::kJoin) {
      saw_left |= static_cast<JoinNode*>(n)->join_type() ==
                  JoinType::kLeftOuter;
    }
  }
  EXPECT_TRUE(saw_left);
}

TEST(ParserTest, MultiKeyJoin) {
  const char* script = R"(
a = EXTRACT k:int, d:date, v:int FROM "a";
b = EXTRACT k2:int, d2:date, w:int FROM "b";
j = SELECT v, w AS w2 FROM a JOIN b ON k == k2 AND d == d2;
OUTPUT j TO "out";
)";
  ScopeScriptParser parser;
  auto plan = parser.Parse(script, {});
  ASSERT_TRUE(plan.ok());
  std::vector<PlanNode*> nodes;
  CollectNodes(*plan, &nodes);
  for (PlanNode* n : nodes) {
    if (n->kind() == OpKind::kJoin) {
      EXPECT_EQ(static_cast<JoinNode*>(n)->keys().size(), 2u);
    }
  }
}

TEST(ParserTest, OrderByTopAndStar) {
  const char* script = R"(
a = EXTRACT k:int, v:int FROM "a";
s = SELECT * FROM a WHERE v > 0 ORDER BY v DESC, k TOP 5;
OUTPUT s TO "out";
)";
  ScopeScriptParser parser;
  auto plan = parser.Parse(script, {});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE((*plan)->Bind().ok());
  // Output -> Top -> Sort -> Filter -> Extract.
  EXPECT_EQ((*plan)->child()->kind(), OpKind::kTop);
  EXPECT_EQ((*plan)->child()->child()->kind(), OpKind::kSort);
  auto* sort = static_cast<SortNode*>((*plan)->child()->child().get());
  ASSERT_EQ(sort->keys().size(), 2u);
  EXPECT_FALSE(sort->keys()[0].ascending);
  EXPECT_TRUE(sort->keys()[1].ascending);
}

TEST(ParserTest, ProcessWithAndWithoutProduce) {
  const char* script = R"(
a = EXTRACT k:int, v:string FROM "a";
p = PROCESS a USING cleanse("datalib", "2.1");
q = PROCESS p USING identity("datalib", "2.1") PRODUCE k:int, v:string;
OUTPUT q TO "out";
)";
  ScopeScriptParser parser;
  auto plan = parser.Parse(script, {});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE((*plan)->Bind().ok());
  std::vector<PlanNode*> nodes;
  CollectNodes(*plan, &nodes);
  int processes = 0;
  for (PlanNode* n : nodes) {
    if (n->kind() == OpKind::kProcess) {
      ++processes;
      auto* p = static_cast<ProcessNode*>(n);
      EXPECT_EQ(p->library(), "datalib");
      EXPECT_EQ(p->version(), "2.1");
    }
  }
  EXPECT_EQ(processes, 2);
}

TEST(ParserTest, UnionAll) {
  const char* script = R"(
a = EXTRACT k:int FROM "a";
b = EXTRACT k:int FROM "b";
u = a UNION ALL b;
OUTPUT u TO "out";
)";
  ScopeScriptParser parser;
  auto plan = parser.Parse(script, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->child()->kind(), OpKind::kUnionAll);
}

TEST(ParserTest, ExpressionPrecedence) {
  const char* script = R"(
a = EXTRACT x:int, y:int FROM "a";
s = SELECT x + y * 2 AS z FROM a WHERE x > 1 AND y < 2 OR x == 0;
OUTPUT s TO "out";
)";
  ScopeScriptParser parser;
  auto plan = parser.Parse(script, {});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::vector<PlanNode*> nodes;
  CollectNodes(*plan, &nodes);
  for (PlanNode* n : nodes) {
    if (n->kind() == OpKind::kProject) {
      auto* p = static_cast<ProjectNode*>(n);
      EXPECT_EQ(p->exprs()[0].expr->ToString(), "(x + (y * 2))");
    }
    if (n->kind() == OpKind::kFilter) {
      auto* f = static_cast<FilterNode*>(n);
      EXPECT_EQ(f->predicate()->ToString(),
                "(((x > 1) AND (y < 2)) OR (x == 0))");
    }
  }
}

TEST(ParserTest, DateLiteralAndFunctions) {
  const char* script = R"(
a = EXTRACT d:date, s:string FROM "a";
f = SELECT lower(s) AS ls, year(d) AS y FROM a
    WHERE d >= date("2018-01-01");
OUTPUT f TO "out";
)";
  ScopeScriptParser parser;
  auto plan = parser.Parse(script, {});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE((*plan)->Bind().ok());
  EXPECT_EQ((*plan)->output_schema().ToString(), "ls:string, y:int64");
}

// --- Error cases ----------------------------------------------------------------

TEST(ParserErrorTest, UnknownDataset) {
  ScopeScriptParser parser;
  auto r = parser.Parse("OUTPUT nope TO \"x\";", {});
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(ParserErrorTest, MissingOutput) {
  ScopeScriptParser parser;
  auto r = parser.Parse("a = EXTRACT k:int FROM \"a\";", {});
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(ParserErrorTest, TwoOutputs) {
  ScopeScriptParser parser;
  auto r = parser.Parse(R"(
a = EXTRACT k:int FROM "a";
OUTPUT a TO "x";
OUTPUT a TO "y";
)",
                        {});
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(ParserErrorTest, UnboundParameter) {
  ScopeScriptParser parser;
  auto by_hole = parser.Parse(
      "a = EXTRACT k:int FROM \"s_{date}\"; OUTPUT a TO \"x\";", {});
  EXPECT_TRUE(by_hole.status().IsParseError());
  auto by_at = parser.Parse(R"(
a = EXTRACT k:int FROM "s";
f = SELECT k FROM a WHERE k > @threshold;
OUTPUT f TO "x";
)",
                            {});
  EXPECT_TRUE(by_at.status().IsParseError());
}

TEST(ParserErrorTest, NonGroupedColumnRejected) {
  ScopeScriptParser parser;
  auto r = parser.Parse(R"(
a = EXTRACT k:int, v:int FROM "a";
g = SELECT v, COUNT(*) AS n FROM a GROUP BY k;
OUTPUT g TO "x";
)",
                        {});
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(ParserErrorTest, MalformedSyntax) {
  ScopeScriptParser parser;
  EXPECT_TRUE(parser.Parse("a = EXTRACT k:int FROM ;", {})
                  .status()
                  .IsParseError());
  EXPECT_TRUE(parser.Parse("a == b;", {}).status().IsParseError());
  EXPECT_TRUE(parser.Parse("a = EXTRACT k:blob FROM \"s\";", {})
                  .status()
                  .IsParseError());
  EXPECT_TRUE(
      parser.Parse("a = EXTRACT k:int FROM \"unterminated;", {})
          .status()
          .IsParseError());
}

TEST(ParserTest, ReduceStatement) {
  const char* script = R"(
a = EXTRACT k:int, v:string FROM "a";
r = REDUCE a ON k USING first_of_group("dedup", "1.0");
OUTPUT r TO "out";
)";
  ScopeScriptParser parser;
  auto plan = parser.Parse(script, {});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE((*plan)->Bind().ok());
  auto* reduce = static_cast<ReduceNode*>((*plan)->child().get());
  ASSERT_EQ(reduce->kind(), OpKind::kReduce);
  EXPECT_EQ(reduce->keys(), std::vector<std::string>{"k"});
  EXPECT_EQ(reduce->library(), "dedup");
  // Groups must arrive co-located and sorted.
  auto req = reduce->RequiredFromChild(0);
  EXPECT_TRUE(req.partitioning == Partitioning::Hash({"k"}, 0));
  EXPECT_TRUE(req.sort_order.IsSorted());
}

TEST(ParserTest, OutputClusteredSortedBy) {
  const char* script = R"(
a = EXTRACT k:int, v:int, s:string FROM "a";
OUTPUT a TO "out" CLUSTERED BY k, s INTO 8 SORTED BY v DESC, k;
)";
  ScopeScriptParser parser;
  auto plan = parser.Parse(script, {});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE((*plan)->Bind().ok());
  auto* output = static_cast<OutputNode*>(plan->get());
  const PhysicalProperties& design = output->declared_design();
  EXPECT_EQ(design.partitioning.scheme, PartitionScheme::kHash);
  EXPECT_EQ(design.partitioning.partition_count, 8);
  ASSERT_EQ(design.partitioning.columns.size(), 2u);
  ASSERT_EQ(design.sort_order.keys.size(), 2u);
  EXPECT_FALSE(design.sort_order.keys[0].ascending);
  // The requirement flows to the child for enforcer insertion.
  EXPECT_TRUE(output->RequiredFromChild(0) == design);
}

TEST(ParserErrorTest, OutputDesignValidatesColumns) {
  ScopeScriptParser parser;
  auto plan = parser.Parse(R"(
a = EXTRACT k:int FROM "a";
OUTPUT a TO "out" CLUSTERED BY nope;
)",
                           {});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE((*plan)->Bind().IsInvalidArgument());
}

TEST(ParserErrorTest, ReduceWithoutKeysFails) {
  ScopeScriptParser parser;
  auto r = parser.Parse(R"(
a = EXTRACT k:int FROM "a";
r = REDUCE a USING first_of_group("d", "1");
OUTPUT r TO "out";
)",
                        {});
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(ParserErrorTest, UnknownFunction) {
  ScopeScriptParser parser;
  auto r = parser.Parse(R"(
a = EXTRACT k:int FROM "a";
f = SELECT frobnicate(k) AS x FROM a;
OUTPUT f TO "x";
)",
                        {});
  EXPECT_TRUE(r.status().IsParseError());
}

}  // namespace
}  // namespace cloudviews
