#ifndef CLOUDVIEWS_OPTIMIZER_VIEW_INTERFACES_H_
#define CLOUDVIEWS_OPTIMIZER_VIEW_INTERFACES_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "plan/physical_properties.h"
#include "plan/plan_node.h"
#include "signature/containment.h"

namespace cloudviews {

/// \brief Output of the CloudViews analyzer for one selected overlapping
/// computation: "future jobs must materialize and reuse this subgraph"
/// (Sec 4, query annotations).
struct ViewAnnotation {
  /// Identity of the computation template across recurring instances.
  Hash128 normalized_signature;
  /// Physical design mined from the consumers' required properties
  /// (Sec 5.3).
  PhysicalProperties design;
  /// Statistics observed in prior runs (the feedback loop).
  double expected_rows = 0;
  double expected_bytes = 0;
  double avg_runtime_seconds = 0;
  /// How often the subgraph occurred in the analyzed window.
  int64_t frequency = 0;
  /// How long a materialized instance stays useful, from input lineage
  /// (Sec 5.4); added to the materialization time to get the absolute
  /// expiry.
  LogicalTime lifetime_seconds = 0;
  /// Offline mode: materialize in a standalone pre-job instead of inline
  /// (Sec 6.2, "offline view materialization mode").
  bool offline = false;

  /// Containment matching (tiers 1-2 of the CandidateMatcher): compact
  /// feature vector for cheap candidate filtering, and the definition
  /// skeleton (a bound clone of the first mined occurrence) that tier 2
  /// verifies containment against structurally. Both are shared read-only
  /// after the analyzer publishes them; null/empty when the analyzer did
  /// not (or could not) compute them, which simply disables containment
  /// matching for this annotation.
  std::shared_ptr<const ViewFeatures> features;
  PlanNodePtr definition;
};

/// A view instance that is already materialized and available.
struct MaterializedViewInfo {
  std::string path;
  Hash128 normalized_signature;
  Hash128 precise_signature;
  uint64_t producer_job_id = 0;
  PhysicalProperties design;
  double rows = 0;
  double bytes = 0;
  /// Instance-level features computed from the producer's spool subtree at
  /// registration: concrete predicate bounds, opaque conjunct hashes, and
  /// the core precise signature. Null for instances registered before
  /// containment matching existed (they then only serve exact matches).
  std::shared_ptr<const ViewFeatures> reuse_features;
};

/// \brief The slice of the metadata service the optimizer interacts with
/// (steps 2-4 of Fig 9).
class ViewCatalogInterface {
 public:
  virtual ~ViewCatalogInterface() = default;

  /// Step 5-of-Fig-7 matching: is this precise computation materialized?
  virtual std::optional<MaterializedViewInfo> FindMaterialized(
      const Hash128& normalized, const Hash128& precise) = 0;

  /// Step 3/4 of Fig 9: try to take the exclusive build lock. Returns true
  /// if this job should materialize the view, false if another job holds
  /// the lock or the view already exists.
  virtual bool ProposeMaterialize(const Hash128& normalized,
                                  const Hash128& precise, uint64_t job_id,
                                  double expected_build_seconds) = 0;

  /// Releases a build lock taken by ProposeMaterialize without registering
  /// a view (the owning job failed or its plan was discarded before the
  /// spool ran). Must be idempotent and a no-op when `job_id` does not own
  /// the lock. Default no-op for catalogs that never grant locks.
  virtual void AbandonLock(const Hash128& precise, uint64_t job_id) {
    (void)precise;
    (void)job_id;
  }

  /// Containment tier 2.5: lists the live materialized instances of one
  /// computation template, in a deterministic order, so the matcher can
  /// check per-instance predicate containment. Default: none (catalogs
  /// without instance tracking only serve exact matches).
  virtual std::vector<MaterializedViewInfo> FindSubsumableInstances(
      const Hash128& normalized) {
    (void)normalized;
    return {};
  }
};

/// Runtime statistics observed for a subgraph template in prior runs.
struct SubgraphObservedStats {
  double rows = 0;
  double bytes = 0;
  double latency_seconds = 0;
  double cpu_seconds = 0;
  int64_t observations = 0;
};

/// \brief Source of prior-run statistics for the feedback loop (Sec 5.1).
class StatsProviderInterface {
 public:
  virtual ~StatsProviderInterface() = default;

  virtual std::optional<SubgraphObservedStats> Lookup(
      const Hash128& normalized_signature) const = 0;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_OPTIMIZER_VIEW_INTERFACES_H_
