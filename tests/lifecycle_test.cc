// End-to-end lifecycle tests: offline materialization mode, admin storage
// reclamation, failure injection around the build locks, and the
// early-materialization checkpoint behaviour.
#include <gtest/gtest.h>

#include "core/cloudviews.h"
#include "exec/processor_registry.h"
#include "tests/test_util.h"

namespace cloudviews {
namespace {

using testing_util::ClickSchema;
using testing_util::SharedAggPlan;
using testing_util::WriteClickStream;

JobDefinition SharedJob(const std::string& id, const std::string& date,
                        PlanNodePtr plan) {
  JobDefinition def;
  def.template_id = id;
  def.vc = "vc-" + id;
  def.user = "u-" + id;
  def.logical_plan = std::move(plan);
  return def;
}

class LifecycleTest : public ::testing::Test {
 protected:
  static CloudViewsConfig Config(bool offline) {
    CloudViewsConfig config;
    config.analyzer.selection.top_k = 1;
    config.analyzer.selection.min_frequency = 2;
    config.analyzer.offline_mode = offline;
    return config;
  }

  static JobDefinition JobA(const std::string& date) {
    return SharedJob("jobA", date,
                     PlanBuilder::From(SharedAggPlan(date))
                         .Sort({{"n", false}})
                         .Output("A_" + date)
                         .Build());
  }
  static JobDefinition JobB(const std::string& date) {
    return SharedJob("jobB", date,
                     PlanBuilder::From(SharedAggPlan(date))
                         .Filter(Gt(Col("n"), Lit(int64_t{0})))
                         .Output("B_" + date)
                         .Build());
  }

  void SeedHistory(CloudViews* cv) {
    WriteClickStream(cv->storage(), "clicks_2018-01-01", 1500, 1,
                     "2018-01-01");
    ASSERT_TRUE(cv->Submit(JobA("2018-01-01"), false).ok());
    ASSERT_TRUE(cv->Submit(JobB("2018-01-01"), false).ok());
    cv->RunAnalyzerAndLoad();
  }
};

TEST_F(LifecycleTest, OfflineModeBuildsBeforeTheWorkload) {
  CloudViews cv(Config(/*offline=*/true));
  SeedHistory(&cv);

  WriteClickStream(cv.storage(), "clicks_2018-01-02", 1500, 2, "2018-01-02");

  // Online materialization is disabled for offline annotations: jobs that
  // run before the offline build neither build nor reuse.
  auto early = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(early.ok());
  EXPECT_EQ(early->views_materialized, 0);
  EXPECT_EQ(early->views_reused, 0);

  // The admin pre-job builds the views standalone (Sec 6.2 offline mode).
  auto built = cv.BuildViewsOffline(JobA("2018-01-02"));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(*built, 1);
  EXPECT_EQ(cv.metadata()->NumRegisteredViews(), 1u);

  // Now the actual workload purely reuses.
  auto a = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->views_reused, 1);
  EXPECT_EQ(a->views_materialized, 0);
  auto b = cv.Submit(JobB("2018-01-02"));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->views_reused, 1);
}

TEST_F(LifecycleTest, OfflineBuildIsIdempotent) {
  CloudViews cv(Config(true));
  SeedHistory(&cv);
  WriteClickStream(cv.storage(), "clicks_2018-01-02", 1500, 2, "2018-01-02");
  ASSERT_EQ(*cv.BuildViewsOffline(JobA("2018-01-02")), 1);
  // A second offline pass finds the view already materialized.
  ASSERT_EQ(*cv.BuildViewsOffline(JobA("2018-01-02")), 0);
  EXPECT_EQ(cv.metadata()->NumRegisteredViews(), 1u);
}

TEST_F(LifecycleTest, ReclaimDropsMinimumUtilityViewsFirst) {
  CloudViewsConfig config;
  config.analyzer.selection.top_k = 3;
  config.analyzer.selection.min_frequency = 2;
  CloudViews cv(config);
  SeedHistory(&cv);
  WriteClickStream(cv.storage(), "clicks_2018-01-02", 1500, 2, "2018-01-02");
  // Allow several views per job so multiple get materialized.
  auto a = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(a.ok());
  auto b = cv.Submit(JobB("2018-01-02"));
  ASSERT_TRUE(b.ok());
  size_t views_before = cv.metadata()->NumRegisteredViews();
  ASSERT_GE(views_before, 1u);
  size_t streams_before = cv.storage()->ListStreams("/views/").size();
  EXPECT_EQ(streams_before, views_before);

  size_t dropped = cv.ReclaimViewStorage(1.0);  // at least one view
  EXPECT_GE(dropped, 1u);
  EXPECT_EQ(cv.metadata()->NumRegisteredViews(), views_before - dropped);
  EXPECT_EQ(cv.storage()->ListStreams("/views/").size(),
            views_before - dropped);

  // Reclaiming "everything" empties the registry.
  cv.ReclaimViewStorage(1e18);
  EXPECT_EQ(cv.metadata()->NumRegisteredViews(), 0u);
  EXPECT_TRUE(cv.storage()->ListStreams("/views/").empty());
}

TEST_F(LifecycleTest, EarlyMaterializationSurvivesJobFailure) {
  // Sec 6.4 / Sec 8 "Better reliability": the view publishes before the
  // job completes, so a post-view failure still leaves the checkpoint.
  ProcessorRegistry::Global()->Register(
      "explode", [](const Batch&, Batch*) -> Status {
        return Status::Internal("user code crashed");
      });

  CloudViews cv(Config(false));
  SeedHistory(&cv);
  WriteClickStream(cv.storage(), "clicks_2018-01-02", 1500, 2, "2018-01-02");

  // Failing job: annotated subgraph -> exploding UDO -> output.
  JobDefinition failing = SharedJob(
      "jobA", "2018-01-02",
      PlanBuilder::From(SharedAggPlan("2018-01-02"))
          .Sort({{"n", false}})  // keep the shape matching jobA's template
          .Process("explode", "badlib", "0.1", Schema())
          .Output("A_fail")
          .Build());
  auto r = cv.Submit(failing);
  EXPECT_FALSE(r.ok());  // the job itself failed...

  // ...but whether the view survived depends on whether the spool ran
  // before the failure. The spool wraps the aggregate below the failing
  // processor, so it did.
  EXPECT_EQ(cv.metadata()->NumRegisteredViews(), 1u);
  auto b = cv.Submit(JobB("2018-01-02"));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->views_reused, 1);
}

TEST_F(LifecycleTest, FailureBeforeSpoolReleasesTheLock) {
  CloudViews cv(Config(false));
  SeedHistory(&cv);
  // Day-2 inputs intentionally missing: the job wins the build lock at
  // compile time, then fails at the scan.
  auto r = cv.Submit(JobA("2018-01-02"));
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(cv.metadata()->NumRegisteredViews(), 0u);

  // The lock was abandoned, so the next job can immediately build.
  WriteClickStream(cv.storage(), "clicks_2018-01-02", 1500, 2, "2018-01-02");
  auto retry = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->views_materialized, 1);
  EXPECT_EQ(cv.metadata()->counters().locks_granted, 2u);
}

TEST_F(LifecycleTest, LockExpiryUnblocksAfterCrashWithoutAbandon) {
  // Simulate a job that died without abandoning (e.g. process kill): take
  // the lock directly, advance past its expiry, and verify a retry works.
  CloudViews cv(Config(false));
  SeedHistory(&cv);
  WriteClickStream(cv.storage(), "clicks_2018-01-02", 1500, 2, "2018-01-02");

  auto plan = SharedAggPlan("2018-01-02");
  ASSERT_TRUE(plan->Bind().ok());
  // Steal the lock as a phantom job.
  Hash128 norm, precise;
  {
    // The annotated computation is the optimized subgraph, so locate it by
    // compiling jobA without executing.
    Optimizer opt;
    OptimizeContext ctx;
    ctx.storage = cv.storage();
    auto optimized = opt.Optimize(JobA("2018-01-02").logical_plan, ctx);
    ASSERT_TRUE(optimized.ok());
    // The annotation is the top-utility subgraph; fetch it from metadata.
    auto anns = cv.metadata()->GetRelevantViews({"template:jobA"});
    ASSERT_EQ(anns.size(), 1u);
    norm = anns[0].normalized_signature;
    // Find the matching subgraph's precise signature in the compiled plan.
    bool found = false;
    std::vector<PlanNode*> nodes;
    CollectNodes(optimized->root, &nodes);
    for (PlanNode* n : nodes) {
      if (n->SubtreeHash(SignatureMode::kNormalized) == norm) {
        precise = n->SubtreeHash(SignatureMode::kPrecise);
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
  }
  ASSERT_TRUE(cv.metadata()->ProposeMaterialize(norm, precise, 9999, 10));

  // While the phantom holds the lock, real jobs are denied.
  auto denied = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied->views_materialized, 0);
  EXPECT_EQ(denied->materialize_lock_denied, 1);

  // After expiry (max(60s, 2x build estimate)), the next job takes over —
  // the fault-tolerant behaviour of Sec 6.1.
  cv.clock()->AdvanceSeconds(3600);
  auto retry = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->views_materialized, 1);
}

TEST_F(LifecycleTest, BuilderCrashLeaseExpiryAndStaleRegistrationRejected) {
  // The full crashed-builder story: a builder dies between writing the view
  // file and registering it. Its build lock is fenced by the wall-clock
  // lease, the takeover job cleans the orphaned file and builds its own
  // copy, and the dead builder's late registration attempt is rejected.
  fault::FaultInjector injector(42);
  FakeMonotonicClock wall;
  CloudViewsConfig config = Config(/*offline=*/false);
  config.fault = &injector;
  config.wall_clock = &wall;
  CloudViews cv(config);
  SeedHistory(&cv);
  WriteClickStream(cv.storage(), "clicks_2018-01-02", 1500, 2, "2018-01-02");

  fault::FaultSpec crash;
  crash.trigger_every = 1;
  crash.max_fires = 1;
  crash.crash = true;
  crash.code = StatusCode::kInternal;
  injector.Arm(fault::points::kBuilderCrash, crash);

  auto dead = cv.Submit(JobA("2018-01-02"));
  ASSERT_FALSE(dead.ok());
  EXPECT_TRUE(fault::IsInjectedCrash(dead.status()));
  // The "process" died holding the build lock, with a complete but
  // unregistered view file orphaned in the store.
  ASSERT_EQ(cv.metadata()->NumActiveLocks(), 1u);
  ASSERT_EQ(cv.storage()->ListStreams("/views/").size(), 1u);
  EXPECT_EQ(cv.metadata()->NumRegisteredViews(), 0u);
  std::string orphan_path = cv.storage()->ListStreams("/views/")[0];
  auto held = cv.metadata()->HeldLocks();
  ASSERT_EQ(held.size(), 1u);
  uint64_t dead_job = held[0].second;

  // Until the lease expires the crashed builder blocks other builders
  // (build-build synchronization still holds).
  auto blocked = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->views_materialized, 0);
  EXPECT_EQ(blocked->materialize_lock_denied, 1);

  // Nobody advances the simulated clock — the wall lease alone fences the
  // dead builder out (lifecycle_test's other expiry test uses the logical
  // timeline; this is the crashed-process variant).
  wall.AdvanceSeconds(1e9);
  auto takeover = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(takeover.ok());
  EXPECT_EQ(takeover->views_materialized, 1);
  EXPECT_EQ(cv.metadata()->counters().leases_reclaimed, 1u);
  EXPECT_GE(cv.metadata()->counters().orphans_cleaned, 1u);
  EXPECT_FALSE(cv.storage()->StreamExists(orphan_path));  // orphan swept
  EXPECT_EQ(cv.metadata()->NumRegisteredViews(), 1u);
  EXPECT_EQ(cv.metadata()->NumActiveLocks(), 0u);

  // The dead builder's late registration is fenced: the takeover's copy
  // stays authoritative.
  auto views = cv.metadata()->ListViews();
  ASSERT_EQ(views.size(), 1u);
  MaterializedViewInfo stale = views[0];
  stale.producer_job_id = dead_job;
  stale.path = orphan_path;
  Status rejected = cv.metadata()->ReportMaterialized(stale, 0);
  EXPECT_FALSE(rejected.ok());
  EXPECT_GE(cv.metadata()->counters().stale_registrations_rejected, 1u);
  auto after = cv.metadata()->ListViews();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_NE(after[0].producer_job_id, dead_job);
  EXPECT_EQ(after[0].path, views[0].path);
}

}  // namespace
}  // namespace cloudviews
