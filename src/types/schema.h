#ifndef CLOUDVIEWS_TYPES_SCHEMA_H_
#define CLOUDVIEWS_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "common/hash.h"
#include "types/data_type.h"

namespace cloudviews {

/// A named, typed output column of an operator or table.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& o) const {
    return name == o.name && type == o.type;
  }
};

/// \brief Ordered list of fields describing operator / table output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  void AddField(std::string name, DataType type) {
    fields_.push_back({std::move(name), type});
  }

  /// Index of the column with the given name, or -1.
  int FieldIndex(const std::string& name) const;
  bool HasField(const std::string& name) const {
    return FieldIndex(name) >= 0;
  }

  /// Contributes the schema's structure to a signature hash.
  void HashInto(HashBuilder* hb) const;

  bool operator==(const Schema& o) const { return fields_ == o.fields_; }

  /// "name:type, name:type, ..."
  std::string ToString() const;

  /// Estimated row width in bytes (see DataTypeWidth).
  int64_t EstimatedRowWidth() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_TYPES_SCHEMA_H_
