file(REMOVE_RECURSE
  "CMakeFiles/cv_tpcds.dir/generator.cc.o"
  "CMakeFiles/cv_tpcds.dir/generator.cc.o.d"
  "CMakeFiles/cv_tpcds.dir/queries.cc.o"
  "CMakeFiles/cv_tpcds.dir/queries.cc.o.d"
  "libcv_tpcds.a"
  "libcv_tpcds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_tpcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
