
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/cost_model.cc" "src/optimizer/CMakeFiles/cv_optimizer.dir/cost_model.cc.o" "gcc" "src/optimizer/CMakeFiles/cv_optimizer.dir/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/cv_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/cv_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/physical_planner.cc" "src/optimizer/CMakeFiles/cv_optimizer.dir/physical_planner.cc.o" "gcc" "src/optimizer/CMakeFiles/cv_optimizer.dir/physical_planner.cc.o.d"
  "/root/repo/src/optimizer/rules.cc" "src/optimizer/CMakeFiles/cv_optimizer.dir/rules.cc.o" "gcc" "src/optimizer/CMakeFiles/cv_optimizer.dir/rules.cc.o.d"
  "/root/repo/src/optimizer/view_rewriter.cc" "src/optimizer/CMakeFiles/cv_optimizer.dir/view_rewriter.cc.o" "gcc" "src/optimizer/CMakeFiles/cv_optimizer.dir/view_rewriter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signature/CMakeFiles/cv_signature.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/cv_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/cv_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/cv_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
