# Empty dependencies file for cv_bench_util.
# This may be replaced when dependencies are built.
