file(REMOVE_RECURSE
  "CMakeFiles/cv_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/cv_bench_util.dir/bench_util.cc.o.d"
  "libcv_bench_util.a"
  "libcv_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
