#include "tools/invariant_analyzer_lib.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace cloudviews {
namespace lint {
namespace {

std::string ReadFixture(const std::string& name) {
  std::string path = std::string(CV_ANALYZER_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Violation> AnalyzeFixture(const std::string& name) {
  SourceFile f;
  f.display_path = name;
  f.rel_path = "tools/analyzer_fixtures/" + name;
  f.content = ReadFixture(name);
  return AnalyzeSources({f});
}

int CountRule(const std::vector<Violation>& vs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(vs.begin(), vs.end(),
                    [&](const Violation& v) { return v.rule == rule; }));
}

std::string Dump(const std::vector<Violation>& vs) {
  std::ostringstream ss;
  for (const auto& v : vs) {
    ss << v.path << ":" << v.line << ": [" << v.rule << "] " << v.message
       << "\n";
  }
  return ss.str();
}

TEST(InvariantAnalyzerTest, MissingHashFieldIsFlagged) {
  auto vs = AnalyzeFixture("missing_hash_field.h");
  ASSERT_EQ(vs.size(), 1u) << Dump(vs);
  EXPECT_EQ(vs[0].rule, "field-coverage");
  EXPECT_NE(vs[0].message.find("guid_"), std::string::npos);
  EXPECT_NE(vs[0].message.find("hash"), std::string::npos);
  EXPECT_NE(vs[0].message.find("BadHashNode"), std::string::npos);
}

TEST(InvariantAnalyzerTest, MissingRebindFieldIsFlagged) {
  auto vs = AnalyzeFixture("missing_rebind_field.h");
  ASSERT_EQ(vs.size(), 1u) << Dump(vs);
  EXPECT_EQ(vs[0].rule, "field-coverage");
  EXPECT_NE(vs[0].message.find("guid_"), std::string::npos);
  EXPECT_NE(vs[0].message.find("rebind"), std::string::npos);
}

TEST(InvariantAnalyzerTest, StaleSkipsAreFlagged) {
  auto vs = AnalyzeFixture("stale_sig_skip.h");
  EXPECT_EQ(CountRule(vs, "stale-sig-skip"), 3) << Dump(vs);
  EXPECT_EQ(vs.size(), 3u) << Dump(vs);
}

TEST(InvariantAnalyzerTest, MalformedSkipsAreErrorsAndDoNotAttach) {
  auto vs = AnalyzeFixture("unknown_sig_skip.h");
  // The typo'd group and the reason-less skip are unknown-sig-skip errors,
  // and because neither attaches, both members stay uncovered.
  EXPECT_EQ(CountRule(vs, "unknown-sig-skip"), 2) << Dump(vs);
  EXPECT_EQ(CountRule(vs, "field-coverage"), 2) << Dump(vs);
  EXPECT_EQ(vs.size(), 4u) << Dump(vs);
}

TEST(InvariantAnalyzerTest, UnorderedIterationInSignaturePath) {
  auto vs = AnalyzeFixture("unordered_iteration.cc");
  ASSERT_EQ(vs.size(), 2u) << Dump(vs);
  EXPECT_EQ(vs[0].rule, "unordered-iteration");
  EXPECT_EQ(vs[1].rule, "unordered-iteration");
  EXPECT_EQ(vs[0].line, 15);
  EXPECT_EQ(vs[1].line, 24);
}

TEST(InvariantAnalyzerTest, CleanIdentityClassPasses) {
  auto vs = AnalyzeFixture("clean_identity.h");
  EXPECT_TRUE(vs.empty()) << Dump(vs);
}

TEST(InvariantAnalyzerTest, CoverageAcrossSplitDeclarationAndDefinition) {
  // Declaration in a header, definition in a .cc — the audit must join
  // them across files before deciding coverage.
  SourceFile header;
  header.display_path = "split.h";
  header.rel_path = "src/split.h";
  header.content = R"(class SplitNode {
 public:
  void HashInto(int* h) const;
 private:
  int width_ = 0;
  int height_ = 0;
};
)";
  SourceFile impl;
  impl.display_path = "split.cc";
  impl.rel_path = "src/split.cc";
  impl.content = R"(#include "split.h"
void SplitNode::HashInto(int* h) const { *h = width_; }
)";
  auto vs = AnalyzeSources({header, impl});
  ASSERT_EQ(vs.size(), 1u) << Dump(vs);
  EXPECT_EQ(vs[0].rule, "field-coverage");
  EXPECT_EQ(vs[0].path, "split.h");
  EXPECT_NE(vs[0].message.find("height_"), std::string::npos);
}

TEST(InvariantAnalyzerTest, DeclarationOnlyGroupIsNotAudited) {
  // Only a declaration, no body anywhere: the analyzer cannot see the
  // implementation, so it must stay silent rather than guess.
  SourceFile f;
  f.display_path = "decl_only.h";
  f.rel_path = "src/decl_only.h";
  f.content = R"(class OpaqueNode {
 public:
  void HashInto(int* h) const;
 private:
  int hidden_ = 0;
};
)";
  auto vs = AnalyzeSources({f});
  EXPECT_TRUE(vs.empty()) << Dump(vs);
}

TEST(InvariantAnalyzerTest, MissingHasherFieldIsFlagged) {
  // Hashing implemented by an external <Name>Hasher functor: the uncovered
  // member is a hasher-coverage violation; the sig-skip'd member and the
  // covered member stay silent, as does the functor class itself.
  auto vs = AnalyzeFixture("missing_hasher_field.h");
  ASSERT_EQ(vs.size(), 1u) << Dump(vs);
  EXPECT_EQ(vs[0].rule, "hasher-coverage");
  EXPECT_NE(vs[0].message.find("mode"), std::string::npos);
  EXPECT_NE(vs[0].message.find("ShareKeyHasher"), std::string::npos);
}

TEST(InvariantAnalyzerTest, ExternalHasherDelegationCounts) {
  // operator() delegating to a target method inherits that method's
  // member coverage, and a skip on a member the hasher DOES reach (via the
  // delegate) is stale.
  SourceFile f;
  f.display_path = "delegate.h";
  f.rel_path = "src/delegate.h";
  f.content = R"(struct Key {
  int a = 0;
  // sig-skip(hash): claimed unused
  int b = 0;
  int Mix() const { return a ^ b; }
};
struct KeyHasher {
  int operator()(const Key& k) const { return k.Mix(); }
};
)";
  auto vs = AnalyzeSources({f});
  ASSERT_EQ(vs.size(), 1u) << Dump(vs);
  EXPECT_EQ(vs[0].rule, "stale-sig-skip");
  EXPECT_NE(vs[0].message.find("'b'"), std::string::npos);
}

TEST(InvariantAnalyzerTest, RuleTableMatchesFixtures) {
  const auto& rules = AllAnalyzerRules();
  ASSERT_EQ(rules.size(), 5u);
  for (const auto& r : rules) {
    std::string path =
        std::string(CV_ANALYZER_FIXTURE_DIR) + "/" + r.fixture;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "rule " << r.name
                           << " names a missing fixture " << r.fixture;
  }
}

TEST(InvariantAnalyzerTest, DocsTableListsExactlyTheRegisteredRules) {
  std::ifstream in(std::string(CV_DOCS_DIR) + "/lint_rules.md");
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string docs = ss.str();

  size_t begin = docs.find("## invariant_analyzer rules");
  ASSERT_NE(begin, std::string::npos);
  size_t end = docs.find("\n## ", begin + 1);
  std::string section = docs.substr(
      begin, end == std::string::npos ? std::string::npos : end - begin);

  size_t rows = 0;
  for (size_t pos = section.find("\n| `"); pos != std::string::npos;
       pos = section.find("\n| `", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, AllAnalyzerRules().size())
      << "docs/lint_rules.md analyzer table row count must match "
         "AllAnalyzerRules()";
  for (const auto& rule : AllAnalyzerRules()) {
    EXPECT_NE(section.find("| `" + std::string(rule.name) + "` |"),
              std::string::npos)
        << "docs/lint_rules.md is missing rule " << rule.name;
  }
}

TEST(InvariantAnalyzerTest, JsonReportEscapesAndLists) {
  std::vector<Violation> vs = {
      {"a.h", 3, "field-coverage", "member \"x_\"\nnot covered"}};
  std::string json = ViolationsToJson(vs);
  EXPECT_NE(json.find("\"rule\": \"field-coverage\""), std::string::npos);
  EXPECT_NE(json.find("\\\"x_\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  // The raw newline must not survive inside the JSON string value.
  EXPECT_EQ(json.find("\nnot"), std::string::npos);
}

TEST(InvariantAnalyzerTest, LiveTreeIsClean) {
  // The analyzer gates src/ in tier-1: every identity type either covers
  // its members or carries a reasoned sig-skip.
  auto vs = AnalyzeTree({std::string(CV_ANALYZER_SRC_DIR)});
  EXPECT_TRUE(vs.empty()) << Dump(vs);
}

}  // namespace
}  // namespace lint
}  // namespace cloudviews
