// Fault-injection framework tests: deterministic draws, the retry/backoff
// helper, torn-write hygiene, and the "do no harm" degradation paths —
// view-read fallback, lookup degradation, abandoned materializations, and
// lock-leak regressions. A job may only fail when the injected fault hits
// its own computation (exec.morsel, builder.crash); every reuse-pipeline
// fault must degrade, never fail the job.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/cloudviews.h"
#include "fault/backoff.h"
#include "fault/fault_injector.h"
#include "tests/test_util.h"

namespace cloudviews {
namespace {

using fault::FaultInjector;
using fault::FaultSpec;
using fault::RecordingSleeper;
using fault::RetryPolicy;
using fault::RetryWithBackoff;
using testing_util::SharedAggPlan;
using testing_util::WriteClickStream;

// --- Injector unit tests ----------------------------------------------------

std::vector<bool> FireSequence(uint64_t seed, const std::string& key,
                               int hits) {
  FaultInjector inj(seed);
  FaultSpec spec;
  spec.probability = 0.5;
  inj.Arm(fault::points::kStorageRead, spec);
  std::vector<bool> fired;
  for (int i = 0; i < hits; ++i) {
    fired.push_back(!inj.MaybeInject(fault::points::kStorageRead, key).ok());
  }
  return fired;
}

TEST(FaultInjectorTest, DrawsAreDeterministicPerSeedAndKey) {
  auto a1 = FireSequence(7, "stream_a", 64);
  auto a2 = FireSequence(7, "stream_a", 64);
  EXPECT_EQ(a1, a2);  // same seed + key => identical schedule
  // Different keys and different seeds draw independently (64 coin flips
  // colliding exactly is a 2^-64 event, i.e. a broken hash).
  EXPECT_NE(a1, FireSequence(7, "stream_b", 64));
  EXPECT_NE(a1, FireSequence(8, "stream_a", 64));
  // Roughly half of the p=0.5 draws fire.
  int fires = 0;
  for (bool f : a1) fires += f ? 1 : 0;
  EXPECT_GT(fires, 16);
  EXPECT_LT(fires, 48);
}

TEST(FaultInjectorTest, KeyedSequencesIgnoreInterleavedKeys) {
  // Key "a" must see the same fire/no-fire sequence whether or not other
  // keys hit the point in between (thread-interleaving independence).
  FaultInjector alone(11);
  FaultSpec spec;
  spec.probability = 0.4;
  alone.Arm(fault::points::kStorageWrite, spec);
  std::vector<bool> expect;
  for (int i = 0; i < 32; ++i) {
    expect.push_back(
        !alone.MaybeInject(fault::points::kStorageWrite, "a").ok());
  }
  FaultInjector mixed(11);
  mixed.Arm(fault::points::kStorageWrite, spec);
  std::vector<bool> got;
  for (int i = 0; i < 32; ++i) {
    (void)mixed.MaybeInject(fault::points::kStorageWrite, "noise");
    got.push_back(!mixed.MaybeInject(fault::points::kStorageWrite, "a").ok());
    (void)mixed.MaybeInject(fault::points::kStorageWrite, "other");
  }
  EXPECT_EQ(expect, got);
}

TEST(FaultInjectorTest, TriggerEveryAndMaxFires) {
  FaultInjector inj(1);
  FaultSpec spec;
  spec.trigger_every = 3;
  spec.max_fires = 2;
  spec.code = StatusCode::kAborted;
  spec.message = "simulated outage";
  inj.Arm(fault::points::kMetadataLookup, spec);
  std::vector<int> fired_hits;
  for (int i = 1; i <= 12; ++i) {
    Status s = inj.MaybeInject(fault::points::kMetadataLookup);
    if (!s.ok()) {
      fired_hits.push_back(i);
      EXPECT_EQ(s.code(), StatusCode::kAborted);
      EXPECT_NE(s.message().find("simulated outage"), std::string::npos);
      EXPECT_TRUE(fault::IsInjectedFault(s));
      EXPECT_FALSE(fault::IsInjectedCrash(s));
    }
  }
  EXPECT_EQ(fired_hits, (std::vector<int>{3, 6}));  // max_fires caps at 2
  EXPECT_EQ(inj.hits(fault::points::kMetadataLookup), 12u);
  EXPECT_EQ(inj.fires(fault::points::kMetadataLookup), 2u);
  EXPECT_EQ(inj.total_fires(), 2u);
}

TEST(FaultInjectorTest, EventsJsonCarriesSeedPointsAndEvents) {
  FaultInjector inj(99);
  FaultSpec spec;
  spec.trigger_every = 1;
  inj.Arm(fault::points::kStorageViewRead, spec);
  ASSERT_FALSE(
      inj.MaybeInject(fault::points::kStorageViewRead, "/views/x").ok());
  std::string json = inj.EventsJson();
  EXPECT_NE(json.find("\"seed\":99"), std::string::npos);
  EXPECT_NE(json.find("storage.view_read"), std::string::npos);
  EXPECT_NE(json.find("/views/x"), std::string::npos);
  ASSERT_EQ(inj.events().size(), 1u);
  EXPECT_EQ(inj.events()[0].point, fault::points::kStorageViewRead);
  EXPECT_EQ(inj.events()[0].sequence, 1u);

  std::string path = ::testing::TempDir() + "/fault_events.json";
  ASSERT_TRUE(inj.WriteEventsJson(path).ok());
  std::ifstream back(path);
  std::string written((std::istreambuf_iterator<char>(back)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(written, json + "\n");  // the artifact file is newline-terminated
}

TEST(FaultInjectorTest, ResetDisarmsAndClears) {
  FaultInjector inj(5);
  FaultSpec spec;
  spec.trigger_every = 1;
  inj.Arm(fault::points::kStorageRead, spec);
  ASSERT_FALSE(inj.MaybeInject(fault::points::kStorageRead).ok());
  inj.Reset();
  EXPECT_TRUE(inj.MaybeInject(fault::points::kStorageRead).ok());
  EXPECT_EQ(inj.total_fires(), 0u);
  EXPECT_TRUE(inj.events().empty());
}

// --- Retry/backoff ----------------------------------------------------------

TEST(RetryWithBackoffTest, SleepsTheCappedExponentialSchedule) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_seconds = 0.001;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.003;
  RecordingSleeper sleeper;
  int retries = 0;
  int calls = 0;
  Status s = RetryWithBackoff(
      policy,
      [&]() -> Status {
        ++calls;
        return Status::IOError("still down");
      },
      &sleeper, &retries);
  EXPECT_TRUE(s.IsIOError());  // last error surfaces
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(retries, 4);
  // 0.001, 0.002, then capped at 0.003.
  EXPECT_EQ(sleeper.sleeps(),
            (std::vector<double>{0.001, 0.002, 0.003, 0.003}));
}

TEST(RetryWithBackoffTest, StopsOnFirstSuccess) {
  RecordingSleeper sleeper;
  int calls = 0;
  Status s = RetryWithBackoff(
      RetryPolicy{},
      [&]() -> Status {
        return ++calls < 3 ? Status::Aborted("transient") : Status::OK();
      },
      &sleeper);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeper.sleeps().size(), 2u);
}

TEST(RetryWithBackoffTest, RetryGetsAFreshDrawFromTheInjector) {
  // A transient injected fault (max_fires=1) is healed by one retry: each
  // attempt is a new per-key ordinal, not a replay of the failing draw.
  FaultInjector inj(3);
  FaultSpec spec;
  spec.trigger_every = 1;
  spec.max_fires = 1;
  inj.Arm(fault::points::kStorageViewRead, spec);
  RecordingSleeper sleeper;
  Status s = RetryWithBackoff(
      RetryPolicy{},
      [&] { return inj.MaybeInject(fault::points::kStorageViewRead, "/v"); },
      &sleeper);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(sleeper.sleeps().size(), 1u);
}

// --- End-to-end degradation -------------------------------------------------

JobDefinition SharedJob(const std::string& id, const std::string& date,
                        PlanNodePtr plan) {
  JobDefinition def;
  def.template_id = id;
  def.vc = "vc-" + id;
  def.user = "u-" + id;
  def.logical_plan = std::move(plan);
  return def;
}

class FaultPipelineTest : public ::testing::Test {
 protected:
  FaultPipelineTest() : injector_(kSeed) {
    CloudViewsConfig config;
    config.analyzer.selection.top_k = 1;
    config.analyzer.selection.min_frequency = 2;
    config.fault = &injector_;
    config.sleeper = &sleeper_;  // retries never wait for real
    cv_ = std::make_unique<CloudViews>(config);
  }

  static constexpr uint64_t kSeed = 42;

  static JobDefinition JobA(const std::string& date) {
    return SharedJob("jobA", date,
                     PlanBuilder::From(SharedAggPlan(date))
                         .Sort({{"n", false}})
                         .Output("A_" + date)
                         .Build());
  }
  static JobDefinition JobB(const std::string& date,
                            const std::string& out_suffix = "") {
    return SharedJob("jobB", date,
                     PlanBuilder::From(SharedAggPlan(date))
                         .Filter(Gt(Col("n"), Lit(int64_t{0})))
                         .Output("B_" + date + out_suffix)
                         .Build());
  }

  void SeedHistory() {
    WriteClickStream(cv_->storage(), "clicks_2018-01-01", 1500, 1,
                     "2018-01-01");
    ASSERT_TRUE(cv_->Submit(JobA("2018-01-01"), false).ok());
    ASSERT_TRUE(cv_->Submit(JobB("2018-01-01"), false).ok());
    cv_->RunAnalyzerAndLoad();
    WriteClickStream(cv_->storage(), "clicks_2018-01-02", 1500, 2,
                     "2018-01-02");
  }

  /// Canonical row-sorted rendering of a stored stream, for byte-for-byte
  /// output comparison across fault and no-fault runs.
  std::string Fingerprint(const std::string& stream) {
    auto open = cv_->storage()->OpenStream(stream);
    EXPECT_TRUE(open.ok()) << stream << ": " << open.status().ToString();
    if (!open.ok()) return "<unreadable>";
    Batch all = CombineBatches((*open)->schema, (*open)->batches);
    std::vector<SortKey> keys;
    for (const auto& f : (*open)->schema.fields()) {
      keys.push_back({f.name, /*ascending=*/true});
    }
    all = SortBatch(all, keys);
    std::string out;
    for (size_t r = 0; r < all.num_rows(); ++r) {
      for (const Value& v : all.GetRow(r)) out += v.ToString() + "|";
      out += "\n";
    }
    return out;
  }

  FaultInjector injector_;
  RecordingSleeper sleeper_;
  std::unique_ptr<CloudViews> cv_;
};

TEST_F(FaultPipelineTest, TornViewWriteIsNeverReadableOrRegistered) {
  SeedHistory();
  FaultSpec torn;
  torn.trigger_every = 1;
  torn.max_fires = 1;
  injector_.Arm(fault::points::kStorageViewWriteTorn, torn);

  // The builder's write tears; the job itself still succeeds and the torn
  // partial is discarded, not registered.
  auto r = cv_->Submit(JobA("2018-01-02"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(injector_.fires(fault::points::kStorageViewWriteTorn), 1u);
  EXPECT_EQ(cv_->metadata()->NumRegisteredViews(), 0u);
  EXPECT_EQ(cv_->metadata()->NumActiveLocks(), 0u);
  // The spool deleted its partial: no incomplete stream may remain, and
  // nothing under /views/ is left to trip a later reader.
  EXPECT_TRUE(cv_->storage()->ListStreams("/views/").empty());

  // Direct storage-level check that a torn write is unreadable while it
  // does exist: tear a write and leave the partial in place.
  injector_.Arm(fault::points::kStorageViewWriteTorn, torn);
  Batch b(testing_util::ClickSchema());
  ASSERT_TRUE(b.AppendRow({Value::Int64(1), Value::String("/home"),
                           Value::Int64(2), Value::Date(0)})
                  .ok());
  Status write = cv_->storage()->WriteStream(
      MakeStreamData("/views/torn/partial.ss", "g1",
                     testing_util::ClickSchema(), {b, b},
                     cv_->clock()->Now()));
  EXPECT_FALSE(write.ok());
  ASSERT_TRUE(cv_->storage()->StreamExists("/views/torn/partial.ss"));
  auto open = cv_->storage()->OpenStream("/views/torn/partial.ss");
  ASSERT_FALSE(open.ok());
  EXPECT_NE(open.status().message().find("torn"), std::string::npos);
}

TEST_F(FaultPipelineTest, ViewReadFaultFallsBackToTheOriginalPlan) {
  SeedHistory();
  auto build = cv_->Submit(JobA("2018-01-02"));
  ASSERT_TRUE(build.ok());
  ASSERT_EQ(build->views_materialized, 1);

  // Every view read now fails, including all retry attempts.
  FaultSpec spec;
  spec.trigger_every = 1;
  injector_.Arm(fault::points::kStorageViewRead, spec);
  auto r = cv_->Submit(JobB("2018-01-02"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();  // the job must not fail
  EXPECT_EQ(r->views_fallback, 1);
  EXPECT_EQ(r->views_reused, 0);  // the plan that actually ran reused nothing
  EXPECT_GE(sleeper_.sleeps().size(), 2u);  // the read was retried first
  EXPECT_EQ(cv_->metadata()->NumActiveLocks(), 0u);

  // Output is identical to a clean no-reuse run.
  injector_.Reset();
  auto baseline = cv_->Submit(JobB("2018-01-02", "_check"), false);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(Fingerprint("B_2018-01-02"), Fingerprint("B_2018-01-02_check"));
}

TEST_F(FaultPipelineTest, TransientViewReadFaultIsAbsorbedByRetry) {
  SeedHistory();
  ASSERT_TRUE(cv_->Submit(JobA("2018-01-02")).ok());
  FaultSpec spec;
  spec.trigger_every = 1;
  spec.max_fires = 1;  // only the first attempt fails
  injector_.Arm(fault::points::kStorageViewRead, spec);
  auto r = cv_->Submit(JobB("2018-01-02"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->views_reused, 1);  // reuse survived via the retry
  EXPECT_EQ(r->views_fallback, 0);
  EXPECT_EQ(sleeper_.sleeps().size(), 1u);
}

TEST_F(FaultPipelineTest, LookupFaultDegradesToPlainJob) {
  SeedHistory();
  ASSERT_TRUE(cv_->Submit(JobA("2018-01-02")).ok());
  FaultSpec spec;
  spec.trigger_every = 1;
  spec.code = StatusCode::kAborted;
  injector_.Arm(fault::points::kMetadataLookup, spec);
  auto r = cv_->Submit(JobB("2018-01-02"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->lookup_degraded);
  EXPECT_EQ(r->views_reused, 0);
  EXPECT_EQ(r->views_materialized, 0);
  injector_.Reset();
  auto baseline = cv_->Submit(JobB("2018-01-02", "_check"), false);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(Fingerprint("B_2018-01-02"), Fingerprint("B_2018-01-02_check"));
}

TEST_F(FaultPipelineTest, ViewWriteFaultDoesNoHarm) {
  SeedHistory();
  FaultSpec spec;
  spec.trigger_every = 1;
  injector_.Arm(fault::points::kStorageViewWrite, spec);
  auto r = cv_->Submit(JobA("2018-01-02"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();  // materialization is optional
  EXPECT_EQ(cv_->metadata()->NumRegisteredViews(), 0u);
  EXPECT_EQ(cv_->metadata()->NumActiveLocks(), 0u);  // lock handed back
  EXPECT_GE(cv_->metadata()->counters().locks_abandoned, 1u);
  EXPECT_TRUE(cv_->storage()->StreamExists("A_2018-01-02"));

  // With the fault cleared the next instance materializes normally.
  injector_.Reset();
  auto retry = cv_->Submit(JobB("2018-01-02"));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->views_materialized, 1);
  EXPECT_EQ(cv_->metadata()->NumRegisteredViews(), 1u);
}

TEST_F(FaultPipelineTest, ProposeFaultSurfacesAsLockDenial) {
  SeedHistory();
  FaultSpec spec;
  spec.trigger_every = 1;
  injector_.Arm(fault::points::kMetadataPropose, spec);
  auto r = cv_->Submit(JobA("2018-01-02"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->views_materialized, 0);
  EXPECT_EQ(r->materialize_lock_denied, 1);
  EXPECT_EQ(cv_->metadata()->NumActiveLocks(), 0u);  // nothing was granted
}

TEST_F(FaultPipelineTest, ExecFaultFailsTheJobWithoutLeakingLocks) {
  SeedHistory();
  FaultSpec spec;
  spec.trigger_every = 1;
  spec.code = StatusCode::kInternal;
  injector_.Arm(fault::points::kExecMorsel, spec);
  auto r = cv_->Submit(JobA("2018-01-02"));
  ASSERT_FALSE(r.ok());  // a compute fault is a real job failure
  EXPECT_TRUE(fault::IsInjectedFault(r.status()));
  // The build lock the plan carried was released on the failure path.
  EXPECT_EQ(cv_->metadata()->NumActiveLocks(), 0u);
  EXPECT_EQ(cv_->metadata()->NumRegisteredViews(), 0u);
  injector_.Reset();
  auto retry = cv_->Submit(JobA("2018-01-02"));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->views_materialized, 1);
}

TEST_F(FaultPipelineTest, OfflineBuildFailureReleasesEveryRemainingLock) {
  // Regression: an offline pre-job that fails on spool i used to leak the
  // build locks of spools i+1..n (they were proposed up front by the single
  // optimize pass but never ran).
  SeedHistory();
  FaultSpec spec;
  spec.trigger_every = 1;
  spec.code = StatusCode::kInternal;
  injector_.Arm(fault::points::kExecMorsel, spec);
  auto built = cv_->job_service()->MaterializeOfflineViews(JobA("2018-01-02"));
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(cv_->metadata()->NumActiveLocks(), 0u)
      << "offline failure leaked build locks";
  injector_.Reset();
  auto retry = cv_->job_service()->MaterializeOfflineViews(JobA("2018-01-02"));
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(*retry, 1);
}

TEST_F(FaultPipelineTest, AbandonLockIsIdempotentAndOwnerChecked) {
  Hash128 norm{1, 2};
  Hash128 precise{3, 4};
  ASSERT_TRUE(cv_->metadata()->ProposeMaterialize(norm, precise, 7, 10));
  ASSERT_EQ(cv_->metadata()->NumActiveLocks(), 1u);
  // A different job cannot release it.
  cv_->metadata()->AbandonLock(precise, 8);
  EXPECT_EQ(cv_->metadata()->NumActiveLocks(), 1u);
  EXPECT_EQ(cv_->metadata()->counters().locks_abandoned, 0u);
  // The owner releases exactly once; the double release is a no-op.
  cv_->metadata()->AbandonLock(precise, 7);
  cv_->metadata()->AbandonLock(precise, 7);
  EXPECT_EQ(cv_->metadata()->NumActiveLocks(), 0u);
  EXPECT_EQ(cv_->metadata()->counters().locks_abandoned, 1u);
}

}  // namespace
}  // namespace cloudviews
