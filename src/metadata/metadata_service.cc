#include "metadata/metadata_service.h"

#include <algorithm>
#include <chrono>

#include "obs/timed_lock.h"

namespace cloudviews {

void MetadataService::SetMetrics(obs::MetricsRegistry* metrics,
                                 MonotonicClock* wall_clock) {
  if (metrics == nullptr) return;
  // Keep a constructor-injected lease clock unless explicitly overridden.
  if (wall_clock != nullptr) wall_clock_ = wall_clock;
  obs_.lookups = metrics->GetCounter("cv_metadata_lookups_total", {},
                                     "Tag-inverted-index lookups (one per "
                                     "submitted job, Fig 9 step 1)");
  obs_.hits = metrics->GetCounter(
      "cv_metadata_view_hits_total", {},
      "FindMaterialized calls that returned a live view");
  obs_.misses = metrics->GetCounter(
      "cv_metadata_view_misses_total", {},
      "FindMaterialized calls that found no usable view");
  obs_.locks_granted =
      metrics->GetCounter("cv_metadata_build_locks_granted_total", {},
                          "Exclusive build locks granted (Sec 6.1)");
  obs_.locks_denied = metrics->GetCounter(
      "cv_metadata_build_locks_denied_total", {},
      "Build-lock proposals denied (already built or being built)");
  obs_.locks_abandoned =
      metrics->GetCounter("cv_metadata_build_locks_abandoned_total", {},
                          "Build locks released without registering a view "
                          "(failed or discarded materializing jobs)");
  obs_.leases_reclaimed = metrics->GetCounter(
      "cv_metadata_lock_leases_reclaimed_total", {},
      "Expired build-lock leases taken over from presumed-dead builders");
  obs_.stale_registrations = metrics->GetCounter(
      "cv_metadata_stale_registrations_total", {},
      "ReportMaterialized calls rejected by lease fencing or because "
      "another producer already registered the view");
  obs_.views_registered =
      metrics->GetCounter("cv_metadata_views_registered_total", {},
                          "Materialized views registered");
  obs_.views_purged = metrics->GetCounter(
      "cv_metadata_views_purged_total", {}, "Expired views purged");
  obs_.registered_views =
      metrics->GetGauge("cv_metadata_registered_views", {},
                        "Currently registered materialized views");
  obs_.lock_wait = metrics->GetHistogram(
      "cv_metadata_lock_wait_seconds", {}, {},
      "Wall time waiting for any metadata-service mutex (aggregate over "
      "the shard stripes and the analysis-snapshot lock)");
  for (size_t i = 0; i < kNumShards; ++i) {
    shards_[i].lock_wait = metrics->GetHistogram(
        "cv_metadata_shard_lock_wait_seconds",
        {{"shard", std::to_string(i)}}, {},
        "Wall time waiting for one signature-keyed metadata shard stripe "
        "(the per-shard contention signal)");
  }
}

void MetadataService::LoadAnalysis(
    const std::vector<AnnotatedComputation>& computations) {
  auto snapshot = std::make_shared<AnalysisSnapshot>();
  snapshot->computations = computations;
  for (size_t i = 0; i < snapshot->computations.size(); ++i) {
    for (const auto& tag : snapshot->computations[i].tags) {
      snapshot->tag_index[tag].insert(i);
    }
    const auto& features = snapshot->computations[i].annotation.features;
    if (features != nullptr) {
      snapshot->table_set_index[features->table_set_key].push_back(i);
    }
  }
  {
    MutexLock lock(analysis_mu_);
    analysis_ = std::move(snapshot);
  }
  // New annotations change which rewrites the optimizer would pick.
  BumpEpoch();
}

std::shared_ptr<const MetadataService::AnalysisSnapshot>
MetadataService::AnalysisView() const {
  obs::TimedMutexLock lock(analysis_mu_, obs_.lock_wait, wall_clock_);
  return analysis_;
}

void MetadataService::UpdateViewsGauge() {
  if (obs_.registered_views != nullptr) {
    obs_.registered_views->Set(
        static_cast<double>(total_views_.load(std::memory_order_relaxed)));
  }
}

double MetadataService::SimulatedLookupLatency() const {
  // Calibrated to the paper's measurement: ~19ms with one service thread,
  // ~14.3ms with five (Sec 7.3) — a fixed fraction of the work
  // parallelizes across service threads.
  double parallel_fraction = 0.3;
  return config_.base_lookup_latency_seconds *
         (1.0 - parallel_fraction +
          parallel_fraction / std::max(1, config_.service_threads));
}

std::vector<ViewAnnotation> MetadataService::GetRelevantViews(
    const std::vector<std::string>& tags, double* latency_seconds) const {
  counters_.lookups.fetch_add(1, std::memory_order_relaxed);
  if (obs_.lookups != nullptr) obs_.lookups->Increment();
  if (latency_seconds != nullptr) {
    *latency_seconds = SimulatedLookupLatency();
  }
  // Read-mostly path: one pointer copy under analysis_mu_, then the
  // immutable snapshot is scanned without any lock held.
  std::shared_ptr<const AnalysisSnapshot> snapshot = AnalysisView();
  std::vector<ViewAnnotation> out;
  if (snapshot == nullptr) return out;
  std::set<size_t> hits;
  for (const auto& tag : tags) {
    auto it = snapshot->tag_index.find(tag);
    if (it == snapshot->tag_index.end()) continue;
    hits.insert(it->second.begin(), it->second.end());
  }
  out.reserve(hits.size());
  for (size_t i : hits) out.push_back(snapshot->computations[i].annotation);
  return out;
}

Result<std::vector<ViewAnnotation>> MetadataService::TryGetRelevantViews(
    const std::vector<std::string>& tags, double* latency_seconds) const {
  if (fault_ != nullptr) {
    std::string key;
    for (const auto& tag : tags) {
      if (!key.empty()) key += '|';
      key += tag;
    }
    CV_RETURN_NOT_OK(fault_->MaybeInject(fault::points::kMetadataLookup, key));
  }
  return GetRelevantViews(tags, latency_seconds);
}

std::optional<ViewAnnotation> MetadataService::FindAnnotation(
    const Hash128& normalized) const {
  std::shared_ptr<const AnalysisSnapshot> snapshot = AnalysisView();
  if (snapshot == nullptr) return std::nullopt;
  for (const auto& comp : snapshot->computations) {
    if (comp.annotation.normalized_signature == normalized) {
      return comp.annotation;
    }
  }
  return std::nullopt;
}

std::vector<ViewAnnotation> MetadataService::GetContainmentCandidates(
    const std::vector<Hash128>& table_set_keys) const {
  std::vector<ViewAnnotation> out;
  std::shared_ptr<const AnalysisSnapshot> snapshot = AnalysisView();
  if (snapshot == nullptr) return out;
  std::set<size_t> hits;
  for (const auto& key : table_set_keys) {
    auto it = snapshot->table_set_index.find(key);
    if (it == snapshot->table_set_index.end()) continue;
    hits.insert(it->second.begin(), it->second.end());
  }
  out.reserve(hits.size());
  for (size_t i : hits) out.push_back(snapshot->computations[i].annotation);
  return out;
}

std::optional<MaterializedViewInfo> MetadataService::LookupLive(
    const Hash128& precise) {
  Shard& shard = ShardFor(precise);
  obs::TimedMutexLock lock(shard.mu, shard.lock_wait, obs_.lock_wait,
                           wall_clock_);
  auto it = shard.views.find(precise);
  if (it == shard.views.end()) return std::nullopt;
  if (it->second.expires_at != 0 && it->second.expires_at <= clock_->Now()) {
    return std::nullopt;  // expired but not yet purged
  }
  return it->second.info;
}

std::vector<MaterializedViewInfo> MetadataService::FindSubsumableInstances(
    const Hash128& normalized) {
  // std::set keeps the precise signatures ordered, which is the matcher's
  // determinism contract for instance iteration.
  std::vector<Hash128> precise_sigs;
  {
    MutexLock lock(subsume_mu_);
    auto it = instances_by_normalized_.find(normalized);
    if (it == instances_by_normalized_.end()) return {};
    precise_sigs.assign(it->second.begin(), it->second.end());
  }
  std::vector<MaterializedViewInfo> out;
  for (const auto& precise : precise_sigs) {
    auto info = LookupLive(precise);
    if (info.has_value()) out.push_back(std::move(*info));
  }
  return out;
}

std::optional<MaterializedViewInfo> MetadataService::FindMaterialized(
    const Hash128& normalized, const Hash128& precise) {
  Shard& shard = ShardFor(precise);
  obs::TimedMutexLock lock(shard.mu, shard.lock_wait, obs_.lock_wait,
                           wall_clock_);
  // Instrument pointers are set once before concurrent use, so the lambda
  // touches no shard-guarded state.
  auto record_miss = [this] {
    if (obs_.misses != nullptr) obs_.misses->Increment();
  };
  auto it = shard.views.find(precise);
  if (it == shard.views.end()) {
    record_miss();
    return std::nullopt;
  }
  if (!(it->second.info.normalized_signature == normalized)) {
    record_miss();
    return std::nullopt;
  }
  if (it->second.expires_at != 0 && it->second.expires_at <= clock_->Now()) {
    record_miss();
    return std::nullopt;  // expired but not yet purged
  }
  if (obs_.hits != nullptr) obs_.hits->Increment();
  return it->second.info;
}

bool MetadataService::ProposeMaterialize(const Hash128& normalized,
                                         const Hash128& precise,
                                         uint64_t job_id,
                                         double expected_build_seconds) {
  // Attempts count every call (a retry is a new attempt); `proposals`
  // counts only decisions the service actually made, so one logical
  // proposal retried across injected faults never double-counts (see
  // docs/job_profile_schema.md).
  counters_.propose_attempts.fetch_add(1, std::memory_order_relaxed);
  if (fault_ != nullptr) {
    Status injected =
        fault_->MaybeInject(fault::points::kMetadataPropose, precise.ToHex());
    if (!injected.ok()) {
      // A proposal the service never answered is indistinguishable from a
      // denial to the job: it simply runs without materializing this view.
      // It is NOT a service-side decision, so neither `proposals` nor
      // `locks_denied` moves; the gap propose_attempts - proposals is the
      // injected-denial count.
      return false;
    }
  }
  counters_.proposals.fetch_add(1, std::memory_order_relaxed);
  // Orphaned files of a reclaimed lease are deleted after the shard mutex
  // is released (same metadata-first ordering as PurgeExpired, Sec 5.4).
  std::string orphan_prefix;
  {
    Shard& shard = ShardFor(precise);
    obs::TimedMutexLock lock(shard.mu, shard.lock_wait, obs_.lock_wait,
                             wall_clock_);
    if (shard.views.count(precise) > 0) {
      counters_.locks_denied.fetch_add(1, std::memory_order_relaxed);
      if (obs_.locks_denied != nullptr) obs_.locks_denied->Increment();
      return false;  // already materialized
    }
    LogicalTime now = clock_->Now();
    double wall_now = wall_clock_->NowSeconds();
    auto it = shard.locks.find(precise);
    if (it != shard.locks.end()) {
      if (!LockExpired(it->second, now, wall_now)) {
        counters_.locks_denied.fetch_add(1, std::memory_order_relaxed);
        if (obs_.locks_denied != nullptr) obs_.locks_denied->Increment();
        return false;  // a concurrent job is building this view
      }
      // Lease takeover: the previous build attempt is presumed dead.
      // Whatever it wrote under this signature was never registered —
      // collect it for deletion so the new build starts clean. This also
      // applies when the expired lock belonged to THIS job (a torn write
      // plus retry after the job's own lease lapsed): its earlier partial
      // files are just as orphaned and leaked forever if skipped.
      orphan_prefix =
          "/views/" + normalized.ToHex() + "/" + precise.ToHex() + "_";
      if (it->second.job_id != job_id) {
        counters_.leases_reclaimed.fetch_add(1, std::memory_order_relaxed);
        if (obs_.leases_reclaimed != nullptr) {
          obs_.leases_reclaimed->Increment();
        }
      }
    }
    double expiry_seconds =
        std::max(config_.min_lock_seconds,
                 config_.lock_expiry_multiplier * expected_build_seconds);
    shard.locks[precise] =
        BuildLock{job_id, now + static_cast<LogicalTime>(expiry_seconds),
                  wall_now + expiry_seconds};
    counters_.locks_granted.fetch_add(1, std::memory_order_relaxed);
    if (obs_.locks_granted != nullptr) obs_.locks_granted->Increment();
  }
  // A granted lock is catalog state a cached plan depends on (a cached
  // plan holding a Spool for this signature would double-build).
  BumpEpoch();
  if (!orphan_prefix.empty()) {
    size_t cleaned = 0;
    for (const auto& name : storage_->ListStreams(orphan_prefix)) {
      // Intentional drop: racing deletions of an unregistered orphan are
      // harmless — someone removed it, which is all we need.
      (void)storage_->DeleteStream(name);
      ++cleaned;
    }
    counters_.orphans_cleaned.fetch_add(cleaned, std::memory_order_relaxed);
  }
  return true;
}

Status MetadataService::ReportMaterialized(const MaterializedViewInfo& info,
                                          LogicalTime expires_at) {
  auto reject = [this](Status status) {
    counters_.stale_registrations_rejected.fetch_add(
        1, std::memory_order_relaxed);
    if (obs_.stale_registrations != nullptr) {
      obs_.stale_registrations->Increment();
    }
    return status;
  };
  {
    Shard& shard = ShardFor(info.precise_signature);
    obs::TimedMutexLock lock(shard.mu, shard.lock_wait, obs_.lock_wait,
                             wall_clock_);
    auto vit = shard.views.find(info.precise_signature);
    if (vit != shard.views.end()) {
      if (vit->second.info.producer_job_id == info.producer_job_id) {
        return Status::OK();  // idempotent re-report by the same producer
      }
      return reject(Status::AlreadyExists(
          "view " + info.precise_signature.ToHex() +
          " already registered by job " +
          std::to_string(vit->second.info.producer_job_id)));
    }
    auto lit = shard.locks.find(info.precise_signature);
    if (lit != shard.locks.end() &&
        lit->second.job_id != info.producer_job_id) {
      // Lease fencing: this builder's lock expired and another job took the
      // lease. Its registration is stale — the new builder owns the view.
      return reject(Status::Expired(
          "build lock for view " + info.precise_signature.ToHex() +
          " is now held by job " + std::to_string(lit->second.job_id) +
          "; stale registration by job " +
          std::to_string(info.producer_job_id) + " rejected"));
    }
    if (lit != shard.locks.end()) shard.locks.erase(lit);
    shard.views[info.precise_signature] = RegisteredView{info, expires_at};
    total_views_.fetch_add(1, std::memory_order_relaxed);
    counters_.views_registered.fetch_add(1, std::memory_order_relaxed);
    if (obs_.views_registered != nullptr) obs_.views_registered->Increment();
    UpdateViewsGauge();
    // Wake piggybackers blocked on this build: the view is now live.
    shard.lock_cv.NotifyAll();
  }
  {
    // Secondary containment index; maintained outside the shard mutex
    // (subsume_mu_ never nests with shard mutexes) and validated against
    // the shards at read time, so this brief window is benign.
    MutexLock lock(subsume_mu_);
    instances_by_normalized_[info.normalized_signature].insert(
        info.precise_signature);
  }
  // A newly registered view invalidates cached plans that could have
  // reused it — never serve a stale rewrite.
  BumpEpoch();
  return Status::OK();
}

void MetadataService::AbandonLock(const Hash128& precise, uint64_t job_id) {
  bool erased = false;
  {
    Shard& shard = ShardFor(precise);
    obs::TimedMutexLock lock(shard.mu, shard.lock_wait, obs_.lock_wait,
                             wall_clock_);
    auto it = shard.locks.find(precise);
    if (it != shard.locks.end() && it->second.job_id == job_id) {
      shard.locks.erase(it);
      erased = true;
      counters_.locks_abandoned.fetch_add(1, std::memory_order_relaxed);
      if (obs_.locks_abandoned != nullptr) obs_.locks_abandoned->Increment();
      // Wake piggybackers: their builder gave up, so they should stop
      // waiting and fall back to their reuse-blind plans.
      shard.lock_cv.NotifyAll();
    }
  }
  // The freed lock re-opens the materialization opportunity; cached plans
  // compiled while it was held would silently skip the build.
  if (erased) BumpEpoch();
}

Status MetadataService::WaitForMaterialized(const Hash128& precise,
                                            double timeout_seconds) {
  if (fault_ != nullptr) {
    Status injected = fault_->MaybeInject(
        fault::points::kSharingPiggybackTimeout, precise.ToHex());
    if (!injected.ok()) {
      // Forced-timeout injection: surface the timeout outcome regardless of
      // the injected spec's code so callers exercise exactly the fallback
      // path a real expiry would take.
      return Status::Expired("piggyback wait timed out (injected): " +
                             injected.message());
    }
  }
  // The deadline runs on the REAL wall clock even when wall_clock_ is a
  // test fake: a fake clock nobody advances would otherwise park waiters
  // forever, and the bound here is a liveness backstop, not lease policy.
  MonotonicClock* real = MonotonicClock::Real();
  const double deadline = real->NowSeconds() + timeout_seconds;
  Shard& shard = ShardFor(precise);
  obs::TimedMutexLock lock(shard.mu, shard.lock_wait, obs_.lock_wait,
                           wall_clock_);
  for (;;) {
    auto vit = shard.views.find(precise);
    if (vit != shard.views.end() &&
        (vit->second.expires_at == 0 ||
         vit->second.expires_at > clock_->Now())) {
      return Status::OK();  // the build finished; re-probe and rewrite
    }
    auto lit = shard.locks.find(precise);
    if (lit == shard.locks.end() ||
        LockExpired(lit->second, clock_->Now(), wall_clock_->NowSeconds())) {
      return Status::NotFound(
          "no live builder for view " + precise.ToHex() +
          " (abandoned or lease lapsed); piggyback caller must fall back");
    }
    double remaining = deadline - real->NowSeconds();
    if (remaining <= 0) {
      return Status::Expired("piggyback wait for view " + precise.ToHex() +
                             " timed out");
    }
    // Bounded slices: a builder whose lease lapses without any notify (the
    // crashed-builder case) is still detected within one slice.
    shard.lock_cv.WaitFor(
        shard.mu, std::chrono::duration<double>(std::min(remaining, 0.05)));
  }
}

size_t MetadataService::PurgeExpired() {
  LogicalTime now = clock_->Now();
  std::vector<std::string> paths_to_delete;
  std::vector<std::pair<Hash128, Hash128>> purged_sigs;  // normalized, precise
  for (Shard& shard : shards_) {
    // Clean the metadata first so no job can be handed an expired view,
    // then delete the physical files (Sec 5.4).
    obs::TimedMutexLock lock(shard.mu, shard.lock_wait, obs_.lock_wait,
                             wall_clock_);
    for (auto it = shard.views.begin(); it != shard.views.end();) {
      if (it->second.expires_at != 0 && it->second.expires_at <= now) {
        paths_to_delete.push_back(it->second.info.path);
        purged_sigs.emplace_back(it->second.info.normalized_signature,
                                 it->second.info.precise_signature);
        it = shard.views.erase(it);
        total_views_.fetch_sub(1, std::memory_order_relaxed);
        counters_.views_purged.fetch_add(1, std::memory_order_relaxed);
        if (obs_.views_purged != nullptr) obs_.views_purged->Increment();
      } else {
        ++it;
      }
    }
  }
  if (!purged_sigs.empty()) {
    MutexLock lock(subsume_mu_);
    for (const auto& [normalized, precise] : purged_sigs) {
      auto it = instances_by_normalized_.find(normalized);
      if (it == instances_by_normalized_.end()) continue;
      it->second.erase(precise);
      if (it->second.empty()) instances_by_normalized_.erase(it);
    }
  }
  UpdateViewsGauge();
  if (!paths_to_delete.empty()) BumpEpoch();
  for (const auto& path : paths_to_delete) {
    // Intentional drop: the file may already be gone (purged by the
    // storage manager's own expiry sweep), and the metadata entry is
    // authoritative either way.
    (void)storage_->DeleteStream(path);
  }
  return paths_to_delete.size();
}

Status MetadataService::DropView(const Hash128& precise) {
  std::string path;
  Hash128 normalized;
  {
    Shard& shard = ShardFor(precise);
    obs::TimedMutexLock lock(shard.mu, shard.lock_wait, obs_.lock_wait,
                             wall_clock_);
    auto it = shard.views.find(precise);
    if (it == shard.views.end()) {
      return Status::NotFound("view not registered");
    }
    path = it->second.info.path;
    normalized = it->second.info.normalized_signature;
    shard.views.erase(it);
    total_views_.fetch_sub(1, std::memory_order_relaxed);
  }
  {
    MutexLock lock(subsume_mu_);
    auto it = instances_by_normalized_.find(normalized);
    if (it != instances_by_normalized_.end()) {
      it->second.erase(precise);
      if (it->second.empty()) instances_by_normalized_.erase(it);
    }
  }
  UpdateViewsGauge();
  BumpEpoch();
  return storage_->DeleteStream(path);
}

MetadataService::Counters MetadataService::counters() const {
  Counters out;
  out.lookups = counters_.lookups.load(std::memory_order_relaxed);
  out.propose_attempts =
      counters_.propose_attempts.load(std::memory_order_relaxed);
  out.proposals = counters_.proposals.load(std::memory_order_relaxed);
  out.locks_granted = counters_.locks_granted.load(std::memory_order_relaxed);
  out.locks_denied = counters_.locks_denied.load(std::memory_order_relaxed);
  out.locks_abandoned =
      counters_.locks_abandoned.load(std::memory_order_relaxed);
  out.leases_reclaimed =
      counters_.leases_reclaimed.load(std::memory_order_relaxed);
  out.stale_registrations_rejected =
      counters_.stale_registrations_rejected.load(std::memory_order_relaxed);
  out.orphans_cleaned = counters_.orphans_cleaned.load(std::memory_order_relaxed);
  out.views_registered =
      counters_.views_registered.load(std::memory_order_relaxed);
  out.views_purged = counters_.views_purged.load(std::memory_order_relaxed);
  return out;
}

size_t MetadataService::NumRegisteredViews() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    n += shard.views.size();
  }
  return n;
}

size_t MetadataService::NumAnnotations() const {
  std::shared_ptr<const AnalysisSnapshot> snapshot = AnalysisView();
  return snapshot == nullptr ? 0 : snapshot->computations.size();
}

size_t MetadataService::NumActiveLocks() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    n += shard.locks.size();
  }
  return n;
}

std::vector<std::pair<Hash128, uint64_t>> MetadataService::HeldLocks() const {
  std::vector<std::pair<Hash128, uint64_t>> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [precise, held] : shard.locks) {
      out.emplace_back(precise, held.job_id);
    }
  }
  return out;
}

std::vector<MaterializedViewInfo> MetadataService::ListViews() const {
  std::vector<MaterializedViewInfo> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [precise, view] : shard.views) out.push_back(view.info);
  }
  return out;
}

}  // namespace cloudviews
