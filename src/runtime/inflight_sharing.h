#ifndef CLOUDVIEWS_RUNTIME_INFLIGHT_SHARING_H_
#define CLOUDVIEWS_RUNTIME_INFLIGHT_SHARING_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/operator_stats.h"
#include "plan/plan_node.h"

namespace cloudviews {

/// \brief Signature-keyed registry of in-flight executions (work sharing).
///
/// When N concurrent submissions carry the same whole-plan signature, the
/// first to Join becomes the *leader* and runs the normal compile/execute
/// pipeline; the rest become *followers* and block until the leader
/// publishes its outcome, then adopt the executed plan + run stats instead
/// of recomputing them. Sharing is strictly an optimization with a
/// do-no-harm contract: a follower whose leader fails (or whose wait times
/// out) degrades to full independent execution, never to failure, so the
/// result is always byte-identical to what the job would have computed
/// alone.
///
/// Sharing only fires for *fully identical* plans — same normalized AND
/// precise signature AND the same CloudViews mode — which is what makes
/// adopting the leader's output trivially byte-identical. Partial-overlap
/// sharing goes through the materialized-view path (a follower that merely
/// overlaps piggybacks on the builder's view via
/// MetadataService::WaitForMaterialized instead).
///
/// Thread-safe. Entries live exactly from the leader's Join to its publish
/// (every leader exit path must publish — JobService uses an RAII guard);
/// a submission arriving after the publish becomes a fresh leader.
class InflightSharing {
 public:
  /// Identity of one shareable in-flight execution. Two submissions share
  /// only when every field matches: the normalized signature (template
  /// shape), the precise signature (parameter bindings — shared output
  /// must be computed over the same data), and the CloudViews mode (a
  /// reuse-enabled and a reuse-blind run of the same plan execute
  /// different physical plans and must not share).
  struct ShareKey {
    Hash128 normalized;
    Hash128 precise;
    bool cloudviews = false;

    bool operator==(const ShareKey& other) const {
      return normalized == other.normalized && precise == other.precise &&
             cloudviews == other.cloudviews;
    }
  };

  struct ShareKeyHasher {
    size_t operator()(const ShareKey& key) const {
      Hash128Hasher h;
      size_t seed = h(key.normalized);
      seed ^= h(key.precise) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
              (seed >> 2);
      return seed ^ (key.cloudviews ? 0x517cc1b727220a95ULL : 0);
    }
  };

  /// What the leader hands its followers. The plan tree is immutable after
  /// execution, so sharing the pointer across followers is safe.
  struct Outcome {
    /// False until a successful publish; failed leaders publish ok=false
    /// with `status` carrying the reason (followers degrade, they do not
    /// propagate this status).
    bool ok = false;
    Status status;
    uint64_t leader_job_id = 0;
    PlanNodePtr executed_plan;
    JobRunStats run_stats;
    // Rewrite-side stats of the plan that actually ran, copied so a
    // follower's job profile describes the execution it adopted. No
    // views_materialized: the leader built those views, the follower
    // must not claim the builds as its own.
    int views_reused = 0;
    int views_reused_subsumed = 0;
    int compensation_nodes_added = 0;
    double estimated_cost = 0;
  };

  enum class Role { kLeader, kFollower };

  struct Ticket {
    ShareKey key;
    Role role = Role::kLeader;
    /// Null when sharing is disabled for the submission (default ticket).
    std::shared_ptr<struct ShareEntry> entry;
  };

  /// Registers a submission under `key`. The first in-flight submission of
  /// a key becomes the leader; everyone else a follower of that leader.
  Ticket Join(const ShareKey& key) EXCLUDES(mu_);

  /// Follower: blocks until the leader publishes or `timeout_seconds` of
  /// real wall time pass. Returns the published outcome; on timeout an
  /// Outcome with ok=false and an Expired status. Callers treat any
  /// non-ok outcome the same way: run independently.
  Outcome WaitForLeader(const Ticket& ticket, double timeout_seconds)
      EXCLUDES(mu_);

  /// Leader: fans `outcome` (with ok forced true) out to the followers and
  /// retires the entry. Returns the number of followers still waiting.
  size_t PublishSuccess(const Ticket& ticket, Outcome outcome) EXCLUDES(mu_);

  /// Leader: wakes followers with a failure outcome (they degrade to
  /// independent execution) and retires the entry. Idempotent with
  /// PublishSuccess — the first publish wins.
  void PublishFailure(const Ticket& ticket, Status status) EXCLUDES(mu_);

  /// Entries currently pending (leaders in flight); test introspection.
  size_t NumPending() const EXCLUDES(mu_);

 private:
  size_t PublishLocked(const Ticket& ticket, Outcome outcome) REQUIRES(mu_);

  mutable Mutex mu_;
  /// One CondVar for the whole registry: publishes are rare (one per
  /// leader) and each wakes only the followers of one key.
  CondVar cv_;
  std::unordered_map<ShareKey, std::shared_ptr<ShareEntry>, ShareKeyHasher>
      pending_ GUARDED_BY(mu_);
};

/// One in-flight shared execution. All fields are guarded by the owning
/// InflightSharing's mutex; the struct is only reachable through Ticket
/// handles returned by Join and is never touched directly by callers.
struct ShareEntry {
  bool published = false;
  InflightSharing::Outcome outcome;
  /// Followers currently blocked in WaitForLeader (metrics only).
  size_t waiters = 0;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_RUNTIME_INFLIGHT_SHARING_H_
