#include <gtest/gtest.h>

#include "types/batch.h"
#include "types/schema.h"
#include "types/value.h"

namespace cloudviews {
namespace {

// --- DataType ----------------------------------------------------------------

TEST(DataTypeTest, StringRoundTrip) {
  DataType t;
  EXPECT_TRUE(DataTypeFromString("int", &t));
  EXPECT_EQ(t, DataType::kInt64);
  EXPECT_TRUE(DataTypeFromString("string", &t));
  EXPECT_EQ(t, DataType::kString);
  EXPECT_TRUE(DataTypeFromString("date", &t));
  EXPECT_EQ(t, DataType::kDate);
  EXPECT_FALSE(DataTypeFromString("blob", &t));
}

// --- Value ---------------------------------------------------------------------

TEST(ValueTest, BasicAccessors) {
  EXPECT_EQ(Value::Int64(5).int64_value(), 5);
  EXPECT_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_TRUE(Value::Null(DataType::kInt64).is_null());
}

TEST(ValueTest, DateParseFormatRoundTrip) {
  int64_t days = 0;
  ASSERT_TRUE(ParseDate("2018-06-15", &days));
  EXPECT_EQ(FormatDate(days), "2018-06-15");
  ASSERT_TRUE(ParseDate("1970-01-01", &days));
  EXPECT_EQ(days, 0);
  ASSERT_TRUE(ParseDate("1969-12-31", &days));
  EXPECT_EQ(days, -1);
}

TEST(ValueTest, DateFromStringInvalid) {
  EXPECT_TRUE(Value::DateFromString("garbage").is_null());
  EXPECT_TRUE(Value::DateFromString("2018-13-05").is_null());
}

TEST(ValueTest, CompareSameType) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_EQ(Value::Int64(2).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
  EXPECT_LT(Value::Double(1.5).Compare(Value::Double(2.0)), 0);
}

TEST(ValueTest, CompareMixedNumeric) {
  EXPECT_EQ(Value::Int64(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int64(1).Compare(Value::Double(1.5)), 0);
}

TEST(ValueTest, NullsSortFirst) {
  Value null = Value::Null(DataType::kInt64);
  EXPECT_LT(null.Compare(Value::Int64(-100)), 0);
  EXPECT_EQ(null.Compare(Value::Null(DataType::kString)), 0);
}

TEST(ValueTest, HashEqualForEqualValues) {
  HashBuilder a, b;
  Value::Int64(7).HashInto(&a);
  Value::Int64(7).HashInto(&b);
  EXPECT_EQ(a.Finish(), b.Finish());
}

TEST(ValueTest, HashDistinguishesNull) {
  HashBuilder a, b;
  Value::Int64(0).HashInto(&a);
  Value::Null(DataType::kInt64).HashInto(&b);
  EXPECT_NE(a.Finish(), b.Finish());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int64(3).ToString(), "3");
  EXPECT_EQ(Value::String("x").ToString(), "\"x\"");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Null(DataType::kDouble).ToString(), "NULL");
  EXPECT_EQ(Value::DateFromString("2018-01-02").ToString(), "2018-01-02");
}

// --- Schema --------------------------------------------------------------------

TEST(SchemaTest, FieldLookup) {
  Schema s;
  s.AddField("a", DataType::kInt64);
  s.AddField("b", DataType::kString);
  EXPECT_EQ(s.FieldIndex("a"), 0);
  EXPECT_EQ(s.FieldIndex("b"), 1);
  EXPECT_EQ(s.FieldIndex("c"), -1);
  EXPECT_TRUE(s.HasField("b"));
}

TEST(SchemaTest, EqualityAndToString) {
  Schema a({{"x", DataType::kInt64}});
  Schema b({{"x", DataType::kInt64}});
  Schema c({{"x", DataType::kDouble}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "x:int64");
}

TEST(SchemaTest, HashDiffersOnFieldName) {
  Schema a({{"x", DataType::kInt64}});
  Schema b({{"y", DataType::kInt64}});
  HashBuilder ha, hb;
  a.HashInto(&ha);
  b.HashInto(&hb);
  EXPECT_NE(ha.Finish(), hb.Finish());
}

// --- Column / Batch --------------------------------------------------------------

TEST(ColumnTest, AppendAndGet) {
  Column c(DataType::kInt64);
  c.AppendInt64(1);
  c.AppendInt64(2);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.GetValue(1).int64_value(), 2);
  EXPECT_FALSE(c.HasNulls());
}

TEST(ColumnTest, NullTracking) {
  Column c(DataType::kString);
  c.AppendString("a");
  c.AppendNull();
  c.AppendString("b");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_TRUE(c.GetValue(1).is_null());
  EXPECT_TRUE(c.HasNulls());
}

TEST(ColumnTest, AppendValueTypeBridgesIntAndDate) {
  Column c(DataType::kDate);
  c.AppendValue(Value::Date(10));
  c.AppendValue(Value::Int64(20));  // shares int64 payload
  EXPECT_EQ(c.GetValue(0).date_value(), 10);
  EXPECT_EQ(c.GetValue(1).date_value(), 20);
}

TEST(ColumnTest, AppendFromPreservesNulls) {
  Column src(DataType::kDouble);
  src.AppendDouble(1.5);
  src.AppendNull();
  Column dst(DataType::kDouble);
  dst.AppendFrom(src, 0);
  dst.AppendFrom(src, 1);
  EXPECT_DOUBLE_EQ(dst.GetValue(0).double_value(), 1.5);
  EXPECT_TRUE(dst.IsNull(1));
}

TEST(BatchTest, AppendRowAndRead) {
  Schema schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
  Batch b(schema);
  ASSERT_TRUE(b.AppendRow({Value::Int64(1), Value::String("one")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Int64(2), Value::String("two")}).ok());
  EXPECT_EQ(b.num_rows(), 2u);
  auto row = b.GetRow(1);
  EXPECT_EQ(row[0].int64_value(), 2);
  EXPECT_EQ(row[1].string_value(), "two");
}

TEST(BatchTest, AppendRowArityMismatch) {
  Schema schema({{"id", DataType::kInt64}});
  Batch b(schema);
  EXPECT_TRUE(b.AppendRow({Value::Int64(1), Value::Int64(2)})
                  .IsInvalidArgument());
}

TEST(BatchTest, AppendRowFromOtherBatch) {
  Schema schema({{"v", DataType::kInt64}});
  Batch a(schema), b(schema);
  ASSERT_TRUE(a.AppendRow({Value::Int64(9)}).ok());
  b.AppendRowFrom(a, 0);
  EXPECT_EQ(b.GetRow(0)[0].int64_value(), 9);
}

TEST(BatchTest, ByteSizeCountsStrings) {
  Schema schema({{"s", DataType::kString}});
  Batch b(schema);
  ASSERT_TRUE(b.AppendRow({Value::String("0123456789")}).ok());
  EXPECT_GE(b.ByteSize(), 10);
}

TEST(BatchTest, ToStringTruncates) {
  Schema schema({{"v", DataType::kInt64}});
  Batch b(schema);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Int64(i)}).ok());
  }
  std::string s = b.ToString(5);
  EXPECT_NE(s.find("15 more rows"), std::string::npos);
}

}  // namespace
}  // namespace cloudviews
