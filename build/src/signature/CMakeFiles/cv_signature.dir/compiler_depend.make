# Empty compiler generated dependencies file for cv_signature.
# This may be replaced when dependencies are built.
