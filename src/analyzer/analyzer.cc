#include "analyzer/analyzer.h"

#include <algorithm>
#include <map>

#include "common/clock.h"

namespace cloudviews {

std::vector<uint64_t> ComputeSubmissionOrder(
    const std::vector<const SubgraphAggregate*>& selected,
    const std::vector<std::shared_ptr<const JobRecord>>& jobs) {
  std::map<uint64_t, const JobRecord*> by_id;
  std::map<uint64_t, int> overlap_count;  // selected views containing a job
  for (const auto& j : jobs) by_id[j->job_id] = j.get();
  for (const SubgraphAggregate* agg : selected) {
    for (uint64_t job : agg->jobs) ++overlap_count[job];
  }

  // Per selected view (group of jobs sharing the overlap), pick the
  // shortest job — least overlapping on ties — as its builder.
  std::map<uint64_t, const JobRecord*> builders;
  for (const SubgraphAggregate* agg : selected) {
    const JobRecord* best = nullptr;
    for (uint64_t job_id : agg->jobs) {
      auto it = by_id.find(job_id);
      if (it == by_id.end()) continue;
      const JobRecord* j = it->second;
      if (best == nullptr) {
        best = j;
        continue;
      }
      double jl = j->run_stats.latency_seconds;
      double bl = best->run_stats.latency_seconds;
      if (jl < bl ||
          (jl == bl && overlap_count[j->job_id] < overlap_count[best->job_id])) {
        best = j;
      }
    }
    if (best != nullptr) builders[best->job_id] = best;
  }

  // Builders first, ordered by runtime (ties: fewer overlaps), then all
  // remaining jobs in their original order.
  std::vector<const JobRecord*> builder_list;
  for (const auto& [id, j] : builders) builder_list.push_back(j);
  std::sort(builder_list.begin(), builder_list.end(),
            [&](const JobRecord* a, const JobRecord* b) {
              double al = a->run_stats.latency_seconds;
              double bl = b->run_stats.latency_seconds;
              if (al != bl) return al < bl;
              if (overlap_count[a->job_id] != overlap_count[b->job_id]) {
                return overlap_count[a->job_id] < overlap_count[b->job_id];
              }
              return a->job_id < b->job_id;
            });

  std::vector<uint64_t> order;
  std::set<uint64_t> placed;
  for (const JobRecord* j : builder_list) {
    order.push_back(j->job_id);
    placed.insert(j->job_id);
  }
  for (const auto& j : jobs) {
    if (placed.insert(j->job_id).second) order.push_back(j->job_id);
  }
  return order;
}

AnalysisResult CloudViewsAnalyzer::Analyze(
    const std::vector<std::shared_ptr<const JobRecord>>& jobs) const {
  double start = MonotonicNowSeconds();
  AnalysisResult result;
  result.jobs_analyzed = jobs.size();

  OverlapAnalyzer overlap;
  overlap.AddJobs(jobs);
  result.subgraphs_mined = overlap.aggregates().size();
  result.report = overlap.BuildReport();

  ViewSelector selector(config_.selection);
  std::vector<const SubgraphAggregate*> selected =
      selector.Select(overlap.aggregates());

  for (const SubgraphAggregate* agg : selected) {
    AnnotatedComputation comp;
    comp.annotation.normalized_signature = agg->normalized;
    comp.annotation.design = agg->PopularDesign();
    comp.annotation.expected_rows = agg->AvgRows();
    comp.annotation.expected_bytes = agg->AvgBytes();
    comp.annotation.avg_runtime_seconds = agg->AvgLatency();
    comp.annotation.frequency = agg->frequency;
    comp.annotation.lifetime_seconds = agg->max_recurrence_period;
    comp.annotation.offline = config_.offline_mode;
    if (agg->definition != nullptr) {
      comp.annotation.definition = agg->definition;
      comp.annotation.features = std::make_shared<ViewFeatures>(
          ComputeViewFeatures(*agg->definition));
    }
    for (const auto& t : agg->templates) {
      comp.tags.push_back("template:" + t);
    }
    result.annotations.push_back(std::move(comp));
    result.selected.push_back(*agg);
  }
  result.submission_order = ComputeSubmissionOrder(selected, jobs);

  result.analysis_seconds = MonotonicNowSeconds() - start;
  return result;
}

}  // namespace cloudviews
