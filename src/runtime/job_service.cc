#include "runtime/job_service.h"

#include <thread>

namespace cloudviews {

ThreadPool* JobService::ExecutionPool(const ExecOptions& opts) {
  if (opts.worker_threads <= 1) return nullptr;
  MutexLock lock(pool_mu_);
  if (pool_ == nullptr) {
    // The submitting thread helps while it waits (TaskGroup::Wait), so
    // worker_threads - 1 pool workers give worker_threads total threads.
    pool_ = std::make_unique<ThreadPool>(opts.worker_threads - 1);
  }
  return pool_.get();
}

std::vector<std::string> JobService::DefaultTags(const JobDefinition& def) {
  std::vector<std::string> tags;
  tags.push_back("template:" + def.template_id);
  tags.push_back("vc:" + def.vc);
  tags.push_back("user:" + def.user);
  return tags;
}

Result<JobResult> JobService::SubmitJob(const JobDefinition& def,
                                        const JobServiceOptions& options) {
  if (def.logical_plan == nullptr) {
    return Status::InvalidArgument("job has no plan");
  }
  JobResult result;
  result.job_id = next_job_id_.fetch_add(1);

  // --- Compile: metadata lookup + optimization (Fig 6 right, Fig 9) -------
  OptimizeContext ctx;
  ctx.storage = storage_;
  ctx.job_id = result.job_id;
  if (options.use_feedback_statistics && repository_ != nullptr) {
    ctx.feedback = repository_;
  }
  if (options.enable_cloudviews && metadata_ != nullptr) {
    ctx.view_catalog = metadata_;
    std::vector<std::string> tags =
        def.tags.empty() ? DefaultTags(def) : def.tags;
    ctx.annotations =
        metadata_->GetRelevantViews(tags, &result.metadata_lookup_seconds);
  }

  CV_ASSIGN_OR_RETURN(OptimizedPlan optimized,
                      optimizer_.Optimize(def.logical_plan, ctx));
  result.compile_seconds = optimized.optimize_seconds;
  result.views_reused = optimized.views_reused;
  result.views_materialized = optimized.views_materialized;
  result.reuse_rejected_by_cost = optimized.reuse_rejected_by_cost;
  result.materialize_lock_denied = optimized.materialize_lock_denied;
  result.estimated_cost = optimized.estimated_cost;

  // --- Execute with early view publication (Sec 6.4) -----------------------
  ExecContext exec_ctx;
  exec_ctx.storage = storage_;
  exec_ctx.job_id = result.job_id;
  exec_ctx.options = options.exec.value_or(exec_options_);
  exec_ctx.pool = ExecutionPool(exec_ctx.options);
  if (metadata_ != nullptr) {
    exec_ctx.on_view_materialized = [this, &result](const SpoolNode& spool,
                                                    const StreamData& view) {
      MaterializedViewInfo info;
      info.path = spool.view_path();
      info.normalized_signature = spool.normalized_signature();
      info.precise_signature = spool.precise_signature();
      info.producer_job_id = result.job_id;
      info.design = spool.design();
      info.rows = static_cast<double>(view.total_rows);
      info.bytes = static_cast<double>(view.total_bytes);
      metadata_->ReportMaterialized(info, view.expires_at);
    };
  }
  Executor executor(exec_ctx);
  auto run = executor.Execute(optimized.root);
  if (!run.ok()) {
    // Release build locks this job won but can no longer honor; they would
    // otherwise block others until lock expiry.
    if (metadata_ != nullptr) {
      std::vector<PlanNode*> nodes;
      CollectNodes(optimized.root, &nodes);
      for (PlanNode* n : nodes) {
        if (n->kind() == OpKind::kSpool) {
          metadata_->AbandonLock(
              static_cast<SpoolNode*>(n)->precise_signature(),
              result.job_id);
        }
      }
    }
    return run.status();
  }
  result.run_stats = *run;
  result.executed_plan = optimized.root;

  // --- Record in the workload repository (feedback loop) -------------------
  if (options.record_in_repository && repository_ != nullptr) {
    JobRecord record;
    record.job_id = result.job_id;
    record.cluster = def.cluster;
    record.business_unit = def.business_unit;
    record.vc = def.vc;
    record.user = def.user;
    record.template_id = def.template_id;
    record.recurring_instance = def.recurring_instance;
    record.recurrence_period = def.recurrence_period;
    record.submit_time = clock_->Now();
    record.tags = def.tags.empty() ? DefaultTags(def) : def.tags;
    record.plan = optimized.root;
    record.run_stats = result.run_stats;
    repository_->AddJob(std::move(record));
  }
  return result;
}

Result<int> JobService::MaterializeOfflineViews(const JobDefinition& def) {
  if (def.logical_plan == nullptr) {
    return Status::InvalidArgument("job has no plan");
  }
  if (metadata_ == nullptr) {
    return Status::InvalidArgument("offline mode needs a metadata service");
  }
  uint64_t job_id = next_job_id_.fetch_add(1);

  OptimizeContext ctx;
  ctx.storage = storage_;
  ctx.job_id = job_id;
  if (repository_ != nullptr) ctx.feedback = repository_;
  ctx.view_catalog = metadata_;
  std::vector<std::string> tags =
      def.tags.empty() ? DefaultTags(def) : def.tags;
  ctx.annotations = metadata_->GetRelevantViews(tags);
  // Build every annotated subgraph of this job, regardless of the online
  // per-job cap, and treat offline annotations as materializable.
  for (auto& ann : ctx.annotations) ann.offline = false;
  OptimizerConfig config = optimizer_.config();
  config.max_materialized_views_per_job = 1 << 20;
  Optimizer offline_optimizer(config);
  CV_ASSIGN_OR_RETURN(OptimizedPlan optimized,
                      offline_optimizer.Optimize(def.logical_plan, ctx));

  // Extract each Spool subtree and run it standalone: the pre-job builds
  // only the views, nothing else.
  std::vector<PlanNode*> nodes;
  CollectNodes(optimized.root, &nodes);
  int built = 0;
  for (PlanNode* n : nodes) {
    if (n->kind() != OpKind::kSpool) continue;
    auto* spool = static_cast<SpoolNode*>(n);
    PlanNodePtr standalone = spool->Clone();
    CV_RETURN_NOT_OK(standalone->Bind());
    AssignNodeIds(standalone.get());
    ExecContext exec_ctx;
    exec_ctx.storage = storage_;
    exec_ctx.job_id = job_id;
    exec_ctx.options = exec_options_;
    exec_ctx.pool = ExecutionPool(exec_ctx.options);
    exec_ctx.on_view_materialized = [this, job_id](const SpoolNode& node,
                                                   const StreamData& view) {
      MaterializedViewInfo info;
      info.path = node.view_path();
      info.normalized_signature = node.normalized_signature();
      info.precise_signature = node.precise_signature();
      info.producer_job_id = job_id;
      info.design = node.design();
      info.rows = static_cast<double>(view.total_rows);
      info.bytes = static_cast<double>(view.total_bytes);
      metadata_->ReportMaterialized(info, view.expires_at);
    };
    Executor executor(exec_ctx);
    auto run = executor.Execute(standalone);
    if (!run.ok()) {
      metadata_->AbandonLock(spool->precise_signature(), job_id);
      return run.status();
    }
    ++built;
  }
  return built;
}

std::vector<Result<JobResult>> JobService::SubmitConcurrent(
    const std::vector<JobDefinition>& defs,
    const JobServiceOptions& options) {
  std::vector<Result<JobResult>> results(
      defs.size(), Result<JobResult>(Status::Internal("not run")));
  std::vector<std::thread> threads;
  threads.reserve(defs.size());
  for (size_t i = 0; i < defs.size(); ++i) {
    threads.emplace_back([this, &defs, &options, &results, i] {
      results[i] = SubmitJob(defs[i], options);
    });
  }
  for (auto& t : threads) t.join();
  return results;
}

}  // namespace cloudviews
