#ifndef CLOUDVIEWS_SIGNATURE_SIGNATURE_H_
#define CLOUDVIEWS_SIGNATURE_SIGNATURE_H_

#include <vector>

#include "common/hash.h"
#include "plan/plan_node.h"

namespace cloudviews {

/// \brief The two signatures of one computation subgraph (Sec 3).
///
/// The *normalized* signature identifies the computation template across
/// recurring instances (used to decide what to materialize); the *precise*
/// signature identifies one exact computation over one exact data version
/// (used to match a materialized view for reuse, and to expire it).
struct SubgraphSignatures {
  Hash128 precise;
  Hash128 normalized;

  bool operator==(const SubgraphSignatures& o) const {
    return precise == o.precise && normalized == o.normalized;
  }
};

/// Computes both signatures of the subtree rooted at `node`.
SubgraphSignatures ComputeSignatures(const PlanNode& node);

/// One enumerated subgraph of a plan.
struct SubgraphEntry {
  PlanNode* node;
  SubgraphSignatures sigs;
  size_t subtree_size;
};

/// True if this node may root a reuse candidate. Spool/ViewRead nodes are
/// excluded (they are CloudViews runtime artifacts, not user computation).
bool IsReusableRoot(const PlanNode& node);

/// \brief Enumerates every reuse-candidate subgraph of a plan, pre-order
/// (Sec 5.1: "enumerating all possible subgraphs of all jobs").
std::vector<SubgraphEntry> EnumerateSubgraphs(const PlanNodePtr& root);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_SIGNATURE_SIGNATURE_H_
