#include "net/client.h"

#include <algorithm>

namespace cloudviews {
namespace net {

namespace {

Status StatusFromError(const ErrorResponse& error) {
  return Status(static_cast<StatusCode>(error.code), error.message);
}

}  // namespace

Result<Client> Client::Connect(const std::string& address, uint16_t port) {
  CV_ASSIGN_OR_RETURN(Socket sock, Socket::Connect(address, port));
  return Client(std::move(sock));
}

Result<Client::Response> Client::Roundtrip(MsgType type,
                                           std::string_view payload) {
  CV_RETURN_NOT_OK(SendFrame(&sock_, type, payload));
  FrameHeader header;
  Response resp;
  CV_RETURN_NOT_OK(RecvFrame(&sock_, &header, &resp.payload));
  resp.type = static_cast<MsgType>(header.type);
  return resp;
}

Result<Client::SubmitReply> Client::Submit(const SubmitRequest& request) {
  WireWriter w;
  EncodeSubmitRequest(request, &w);
  CV_ASSIGN_OR_RETURN(Response resp,
                      Roundtrip(MsgType::kSubmit, w.bytes()));
  SubmitReply reply;
  switch (resp.type) {
    case MsgType::kSubmitResult:
      reply.kind = SubmitReply::Kind::kResult;
      CV_RETURN_NOT_OK(
          DecodeSubmitResultResponse(resp.payload, &reply.result));
      return reply;
    case MsgType::kAccepted:
      reply.kind = SubmitReply::Kind::kAccepted;
      CV_RETURN_NOT_OK(DecodeAcceptedResponse(resp.payload, &reply.accepted));
      return reply;
    case MsgType::kRetryAfter:
      reply.kind = SubmitReply::Kind::kRetryAfter;
      CV_RETURN_NOT_OK(DecodeRetryAfterResponse(resp.payload, &reply.retry));
      return reply;
    case MsgType::kError:
      reply.kind = SubmitReply::Kind::kError;
      CV_RETURN_NOT_OK(DecodeErrorResponse(resp.payload, &reply.error));
      return reply;
    default:
      return Status(StatusCode::kParseError,
                    "unexpected response type " +
                        std::to_string(static_cast<int>(resp.type)));
  }
}

Result<Client::SubmitReply> Client::SubmitWithRetry(
    const SubmitRequest& request, const fault::RetryPolicy& policy,
    fault::Sleeper* sleeper, int* retries) {
  if (sleeper == nullptr) sleeper = fault::Sleeper::Real();
  if (retries != nullptr) *retries = 0;
  int attempts = std::max(policy.max_attempts, 1);
  double backoff = policy.initial_backoff_seconds;
  Result<SubmitReply> reply = Submit(request);
  for (int attempt = 1; attempt < attempts; ++attempt) {
    if (!reply.ok() || reply->kind != SubmitReply::Kind::kRetryAfter) {
      return reply;
    }
    double hint = reply->retry.retry_after_ms / 1000.0;
    sleeper->Sleep(std::max(hint, backoff));
    backoff = std::min(backoff * policy.backoff_multiplier,
                       policy.max_backoff_seconds);
    if (retries != nullptr) ++*retries;
    reply = Submit(request);
  }
  return reply;
}

Result<StatusResultResponse> Client::QueryStatus(uint64_t ticket) {
  StatusQueryRequest req;
  req.ticket = ticket;
  WireWriter w;
  EncodeStatusQueryRequest(req, &w);
  CV_ASSIGN_OR_RETURN(Response resp,
                      Roundtrip(MsgType::kStatusQuery, w.bytes()));
  if (resp.type == MsgType::kError) {
    ErrorResponse error;
    CV_RETURN_NOT_OK(DecodeErrorResponse(resp.payload, &error));
    return StatusFromError(error);
  }
  if (resp.type != MsgType::kStatusResult) {
    return Status(StatusCode::kParseError, "unexpected response type");
  }
  StatusResultResponse out;
  CV_RETURN_NOT_OK(DecodeStatusResultResponse(resp.payload, &out));
  return out;
}

Result<ProfileResultResponse> Client::FetchProfile(uint64_t ticket) {
  ProfileFetchRequest req;
  req.ticket = ticket;
  WireWriter w;
  EncodeProfileFetchRequest(req, &w);
  CV_ASSIGN_OR_RETURN(Response resp,
                      Roundtrip(MsgType::kProfileFetch, w.bytes()));
  if (resp.type == MsgType::kError) {
    ErrorResponse error;
    CV_RETURN_NOT_OK(DecodeErrorResponse(resp.payload, &error));
    return StatusFromError(error);
  }
  if (resp.type != MsgType::kProfileResult) {
    return Status(StatusCode::kParseError, "unexpected response type");
  }
  ProfileResultResponse out;
  CV_RETURN_NOT_OK(DecodeProfileResultResponse(resp.payload, &out));
  return out;
}

Result<ServerStatsResponse> Client::ServerStats() {
  CV_ASSIGN_OR_RETURN(Response resp, Roundtrip(MsgType::kServerStats, ""));
  if (resp.type == MsgType::kError) {
    ErrorResponse error;
    CV_RETURN_NOT_OK(DecodeErrorResponse(resp.payload, &error));
    return StatusFromError(error);
  }
  if (resp.type != MsgType::kServerStatsResult) {
    return Status(StatusCode::kParseError, "unexpected response type");
  }
  ServerStatsResponse out;
  CV_RETURN_NOT_OK(DecodeServerStatsResponse(resp.payload, &out));
  return out;
}

}  // namespace net
}  // namespace cloudviews
