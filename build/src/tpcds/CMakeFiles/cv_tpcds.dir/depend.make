# Empty dependencies file for cv_tpcds.
# This may be replaced when dependencies are built.
