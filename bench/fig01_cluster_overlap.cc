// Reproduces Figure 1: percentage of overlapping jobs, users with
// overlapping jobs, and overlapping subgraphs across five clusters.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "analyzer/overlap_analyzer.h"
#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace cloudviews {
namespace bench {
namespace {

int Run() {
  FigureHeader(
      "Figure 1", "Overlap in different production clusters",
      "all clusters except cluster3 have >45% overlapping jobs; >65% of "
      "users overlap; overlapping subgraphs up to ~80%");

  TablePrinter table({"cluster", "jobs", "overlapping jobs %",
                      "users w/ overlap %", "overlapping subgraphs %"});
  double min_jobs_pct = 100, min_users_pct = 100, max_subgraph_pct = 0;
  double cluster3_jobs_pct = 0;
  for (int c = 0; c < 5; ++c) {
    ClusterProfile profile = Fig1ClusterProfile(c);
    ClusterRun run = RunClusterInstance(profile, "2018-01-01");
    OverlapAnalyzer overlap;
    overlap.AddJobs(run.cv->repository()->Jobs());
    OverlapReport report = overlap.BuildReport();
    table.AddRow(profile.name,
                 {static_cast<double>(report.total_jobs),
                  report.PctOverlappingJobs(), report.PctUsersWithOverlap(),
                  report.PctOverlappingSubgraphs()},
                 1);
    if (c == 2) {
      cluster3_jobs_pct = report.PctOverlappingJobs();
    } else {
      min_jobs_pct = std::min(min_jobs_pct, report.PctOverlappingJobs());
    }
    min_users_pct = std::min(min_users_pct, report.PctUsersWithOverlap());
    max_subgraph_pct =
        std::max(max_subgraph_pct, report.PctOverlappingSubgraphs());
  }
  table.Print(std::cout);

  std::printf("\nsummary\n");
  PaperVsMeasured("non-outlier clusters: overlapping jobs", "> 45%",
                  StrFormat("min %.1f%%", min_jobs_pct));
  PaperVsMeasured("cluster3 (outlier): overlapping jobs", "lowest, < 45%",
                  StrFormat("%.1f%%", cluster3_jobs_pct));
  PaperVsMeasured("users with overlapping jobs", "> 65%",
                  StrFormat("min %.1f%%", min_users_pct));
  PaperVsMeasured("overlapping subgraphs", "up to ~80%",
                  StrFormat("max %.1f%%", max_subgraph_pct));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
