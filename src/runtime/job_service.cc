#include "runtime/job_service.h"

#include <thread>

namespace cloudviews {

ThreadPool* JobService::ExecutionPool(const ExecOptions& opts) {
  if (opts.worker_threads <= 1) return nullptr;
  MutexLock lock(pool_mu_);
  if (pool_ == nullptr) {
    // The submitting thread helps while it waits (TaskGroup::Wait), so
    // worker_threads - 1 pool workers give worker_threads total threads.
    pool_ = std::make_unique<ThreadPool>(opts.worker_threads - 1, metrics_,
                                         "exec", wall_clock_);
  }
  return pool_.get();
}

void JobService::SetObservability(obs::MetricsRegistry* metrics,
                                  obs::Tracer* tracer,
                                  MonotonicClock* wall_clock) {
  metrics_ = metrics;
  tracer_ = tracer;
  wall_clock_ = wall_clock != nullptr ? wall_clock : MonotonicClock::Real();
  if (metrics == nullptr) return;
  obs_.submitted = metrics->GetCounter("cv_jobs_submitted_total", {},
                                       "Jobs accepted for execution");
  obs_.succeeded = metrics->GetCounter("cv_jobs_succeeded_total", {},
                                       "Jobs that ran to completion");
  obs_.failed = metrics->GetCounter("cv_jobs_failed_total", {},
                                    "Jobs that returned an error");
  obs_.active = metrics->GetGauge("cv_jobs_active", {},
                                  "Jobs currently inside SubmitJob");
  obs_.latency = metrics->GetHistogram("cv_job_latency_seconds", {}, {},
                                       "Submit-to-finish wall time");
  obs_.stage_lookup = metrics->GetHistogram(
      "cv_job_stage_seconds", {{"stage", "metadata_lookup"}}, {},
      "Per-stage wall time of the job pipeline");
  obs_.stage_optimize = metrics->GetHistogram(
      "cv_job_stage_seconds", {{"stage", "optimize"}}, {},
      "Per-stage wall time of the job pipeline");
  obs_.stage_execute = metrics->GetHistogram(
      "cv_job_stage_seconds", {{"stage", "execute"}}, {},
      "Per-stage wall time of the job pipeline");
  obs_.stage_record = metrics->GetHistogram(
      "cv_job_stage_seconds", {{"stage", "record"}}, {},
      "Per-stage wall time of the job pipeline");
  obs_.views_reused =
      metrics->GetCounter("cv_rewrite_views_reused_total", {},
                          "Subgraphs replaced by materialized-view scans");
  obs_.views_materialized =
      metrics->GetCounter("cv_rewrite_views_materialized_total", {},
                          "Online view materializations injected");
  obs_.reuse_rejected = metrics->GetCounter(
      "cv_rewrite_reuse_rejected_by_cost_total", {},
      "Reuse opportunities rejected by the cost model (Sec 6.3)");
  obs_.lock_denied = metrics->GetCounter(
      "cv_rewrite_materialize_lock_denied_total", {},
      "Materializations skipped because another job holds the build lock");
  obs_.mat_skipped = metrics->GetCounter(
      "cv_rewrite_materialize_skipped_by_cost_total", {},
      "Materializations skipped by the write-cost gate");
}

std::vector<std::string> JobService::DefaultTags(const JobDefinition& def) {
  std::vector<std::string> tags;
  tags.push_back("template:" + def.template_id);
  tags.push_back("vc:" + def.vc);
  tags.push_back("user:" + def.user);
  return tags;
}

Result<JobResult> JobService::SubmitJob(const JobDefinition& def,
                                        const JobServiceOptions& options) {
  if (def.logical_plan == nullptr) {
    return Status::InvalidArgument("job has no plan");
  }
  MonotonicClock* wall =
      wall_clock_ != nullptr ? wall_clock_ : MonotonicClock::Real();
  double submit_start = wall->NowSeconds();
  if (obs_.submitted != nullptr) obs_.submitted->Increment();
  obs::ScopedGaugeIncrement active(obs_.active);

  JobResult result;
  result.job_id = next_job_id_.fetch_add(1);

  obs::Span job_span;  // inactive unless a tracer is attached
  if (tracer_ != nullptr) {
    job_span = tracer_->StartTrace("job");
    job_span.SetAttribute("job_id", result.job_id);
    job_span.SetAttribute("template_id", def.template_id);
    job_span.SetAttribute("recurring_instance",
                          static_cast<int64_t>(def.recurring_instance));
  }
  // Shared failure path: stamps counters/latency and hands the trace back
  // on the error too, so failed jobs stay diagnosable.
  auto fail = [&](Status status) {
    if (obs_.failed != nullptr) {
      obs_.failed->Increment();
      obs_.latency->Observe(wall->NowSeconds() - submit_start);
    }
    job_span.SetAttribute("error", status.ToString());
    job_span.End();
    return status;
  };

  // --- Compile: metadata lookup + optimization (Fig 6 right, Fig 9) -------
  OptimizeContext ctx;
  ctx.storage = storage_;
  ctx.job_id = result.job_id;
  ctx.clock = wall;
  if (options.use_feedback_statistics && repository_ != nullptr) {
    ctx.feedback = repository_;
  }
  if (options.enable_cloudviews && metadata_ != nullptr) {
    ctx.view_catalog = metadata_;
    std::vector<std::string> tags =
        def.tags.empty() ? DefaultTags(def) : def.tags;
    double lookup_start = wall->NowSeconds();
    obs::Span span = job_span.StartChild("metadata_lookup");
    ctx.annotations =
        metadata_->GetRelevantViews(tags, &result.metadata_lookup_seconds);
    span.SetAttribute("annotations",
                      static_cast<uint64_t>(ctx.annotations.size()));
    span.SetAttribute("simulated_latency_seconds",
                      result.metadata_lookup_seconds);
    if (obs_.stage_lookup != nullptr) {
      obs_.stage_lookup->Observe(wall->NowSeconds() - lookup_start);
    }
  }

  double optimize_start = wall->NowSeconds();
  obs::Span optimize_span = job_span.StartChild("optimize");
  ctx.span = optimize_span.active() ? &optimize_span : nullptr;
  auto optimized_or = optimizer_.Optimize(def.logical_plan, ctx);
  if (!optimized_or.ok()) return fail(optimized_or.status());
  OptimizedPlan optimized = std::move(optimized_or).ValueOrDie();
  optimize_span.SetAttribute("estimated_cost", optimized.estimated_cost);
  optimize_span.End();
  if (obs_.stage_optimize != nullptr) {
    obs_.stage_optimize->Observe(wall->NowSeconds() - optimize_start);
    obs_.views_reused->Increment(
        static_cast<uint64_t>(optimized.views_reused));
    obs_.views_materialized->Increment(
        static_cast<uint64_t>(optimized.views_materialized));
    obs_.reuse_rejected->Increment(
        static_cast<uint64_t>(optimized.reuse_rejected_by_cost));
    obs_.lock_denied->Increment(
        static_cast<uint64_t>(optimized.materialize_lock_denied));
    obs_.mat_skipped->Increment(
        static_cast<uint64_t>(optimized.materialize_skipped_by_cost));
  }
  result.compile_seconds = optimized.optimize_seconds;
  result.views_reused = optimized.views_reused;
  result.views_materialized = optimized.views_materialized;
  result.reuse_rejected_by_cost = optimized.reuse_rejected_by_cost;
  result.materialize_lock_denied = optimized.materialize_lock_denied;
  result.estimated_cost = optimized.estimated_cost;

  // --- Execute with early view publication (Sec 6.4) -----------------------
  double execute_start = wall->NowSeconds();
  obs::Span execute_span = job_span.StartChild("execute");
  ExecContext exec_ctx;
  exec_ctx.storage = storage_;
  exec_ctx.job_id = result.job_id;
  exec_ctx.metrics = metrics_;
  exec_ctx.clock = wall;
  exec_ctx.options = options.exec.value_or(exec_options_);
  exec_ctx.pool = ExecutionPool(exec_ctx.options);
  if (metadata_ != nullptr) {
    exec_ctx.on_view_materialized = [this, &result](const SpoolNode& spool,
                                                    const StreamData& view) {
      MaterializedViewInfo info;
      info.path = spool.view_path();
      info.normalized_signature = spool.normalized_signature();
      info.precise_signature = spool.precise_signature();
      info.producer_job_id = result.job_id;
      info.design = spool.design();
      info.rows = static_cast<double>(view.total_rows);
      info.bytes = static_cast<double>(view.total_bytes);
      metadata_->ReportMaterialized(info, view.expires_at);
    };
  }
  Executor executor(exec_ctx);
  auto run = executor.Execute(optimized.root);
  if (!run.ok()) {
    // Release build locks this job won but can no longer honor; they would
    // otherwise block others until lock expiry.
    if (metadata_ != nullptr) {
      std::vector<PlanNode*> nodes;
      CollectNodes(optimized.root, &nodes);
      for (PlanNode* n : nodes) {
        if (n->kind() == OpKind::kSpool) {
          metadata_->AbandonLock(
              static_cast<SpoolNode*>(n)->precise_signature(),
              result.job_id);
        }
      }
    }
    return fail(run.status());
  }
  result.run_stats = *run;
  result.executed_plan = optimized.root;
  execute_span.SetAttribute("output_rows", result.run_stats.output_rows);
  execute_span.SetAttribute("output_bytes", result.run_stats.output_bytes);
  execute_span.SetAttribute("cpu_seconds", result.run_stats.cpu_seconds);
  execute_span.SetAttribute(
      "operators", static_cast<uint64_t>(result.run_stats.operators.size()));
  execute_span.End();
  if (obs_.stage_execute != nullptr) {
    obs_.stage_execute->Observe(wall->NowSeconds() - execute_start);
  }

  // --- Record in the workload repository (feedback loop) -------------------
  if (options.record_in_repository && repository_ != nullptr) {
    double record_start = wall->NowSeconds();
    obs::Span record_span = job_span.StartChild("record");
    JobRecord record;
    record.job_id = result.job_id;
    record.cluster = def.cluster;
    record.business_unit = def.business_unit;
    record.vc = def.vc;
    record.user = def.user;
    record.template_id = def.template_id;
    record.recurring_instance = def.recurring_instance;
    record.recurrence_period = def.recurrence_period;
    record.submit_time = clock_->Now();
    record.tags = def.tags.empty() ? DefaultTags(def) : def.tags;
    record.plan = optimized.root;
    record.run_stats = result.run_stats;
    repository_->AddJob(std::move(record));
    record_span.End();
    if (obs_.stage_record != nullptr) {
      obs_.stage_record->Observe(wall->NowSeconds() - record_start);
    }
  }

  if (obs_.succeeded != nullptr) {
    obs_.succeeded->Increment();
    obs_.latency->Observe(wall->NowSeconds() - submit_start);
  }
  result.trace = job_span.Finish();
  return result;
}

Result<int> JobService::MaterializeOfflineViews(const JobDefinition& def) {
  if (def.logical_plan == nullptr) {
    return Status::InvalidArgument("job has no plan");
  }
  if (metadata_ == nullptr) {
    return Status::InvalidArgument("offline mode needs a metadata service");
  }
  uint64_t job_id = next_job_id_.fetch_add(1);

  OptimizeContext ctx;
  ctx.storage = storage_;
  ctx.job_id = job_id;
  if (repository_ != nullptr) ctx.feedback = repository_;
  ctx.view_catalog = metadata_;
  std::vector<std::string> tags =
      def.tags.empty() ? DefaultTags(def) : def.tags;
  ctx.annotations = metadata_->GetRelevantViews(tags);
  // Build every annotated subgraph of this job, regardless of the online
  // per-job cap, and treat offline annotations as materializable.
  for (auto& ann : ctx.annotations) ann.offline = false;
  OptimizerConfig config = optimizer_.config();
  config.max_materialized_views_per_job = 1 << 20;
  Optimizer offline_optimizer(config);
  CV_ASSIGN_OR_RETURN(OptimizedPlan optimized,
                      offline_optimizer.Optimize(def.logical_plan, ctx));

  // Extract each Spool subtree and run it standalone: the pre-job builds
  // only the views, nothing else.
  std::vector<PlanNode*> nodes;
  CollectNodes(optimized.root, &nodes);
  int built = 0;
  for (PlanNode* n : nodes) {
    if (n->kind() != OpKind::kSpool) continue;
    auto* spool = static_cast<SpoolNode*>(n);
    PlanNodePtr standalone = spool->Clone();
    CV_RETURN_NOT_OK(standalone->Bind());
    AssignNodeIds(standalone.get());
    ExecContext exec_ctx;
    exec_ctx.storage = storage_;
    exec_ctx.job_id = job_id;
    exec_ctx.metrics = metrics_;
    exec_ctx.clock = wall_clock_;
    exec_ctx.options = exec_options_;
    exec_ctx.pool = ExecutionPool(exec_ctx.options);
    exec_ctx.on_view_materialized = [this, job_id](const SpoolNode& node,
                                                   const StreamData& view) {
      MaterializedViewInfo info;
      info.path = node.view_path();
      info.normalized_signature = node.normalized_signature();
      info.precise_signature = node.precise_signature();
      info.producer_job_id = job_id;
      info.design = node.design();
      info.rows = static_cast<double>(view.total_rows);
      info.bytes = static_cast<double>(view.total_bytes);
      metadata_->ReportMaterialized(info, view.expires_at);
    };
    Executor executor(exec_ctx);
    auto run = executor.Execute(standalone);
    if (!run.ok()) {
      metadata_->AbandonLock(spool->precise_signature(), job_id);
      return run.status();
    }
    ++built;
  }
  return built;
}

std::vector<Result<JobResult>> JobService::SubmitConcurrent(
    const std::vector<JobDefinition>& defs,
    const JobServiceOptions& options) {
  std::vector<Result<JobResult>> results(
      defs.size(), Result<JobResult>(Status::Internal("not run")));
  std::vector<std::thread> threads;
  threads.reserve(defs.size());
  for (size_t i = 0; i < defs.size(); ++i) {
    threads.emplace_back([this, &defs, &options, &results, i] {
      results[i] = SubmitJob(defs[i], options);
    });
  }
  for (auto& t : threads) t.join();
  return results;
}

}  // namespace cloudviews
