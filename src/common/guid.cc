#include "common/guid.h"

#include <atomic>

#include "common/string_util.h"

namespace cloudviews {

std::string GenerateGuid() {
  static std::atomic<uint64_t> counter{1};
  return StrFormat("g-%016llx", static_cast<unsigned long long>(
                                    counter.fetch_add(1)));
}

}  // namespace cloudviews
