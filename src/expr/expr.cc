#include "expr/expr.h"

#include <cassert>
#include <cmath>

#include "common/string_util.h"
#include "expr/function_registry.h"

namespace cloudviews {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithmeticOpToString(ArithmeticOp op) {
  switch (op) {
    case ArithmeticOp::kAdd:
      return "+";
    case ArithmeticOp::kSub:
      return "-";
    case ArithmeticOp::kMul:
      return "*";
    case ArithmeticOp::kDiv:
      return "/";
    case ArithmeticOp::kMod:
      return "%";
  }
  return "?";
}

const char* LogicalOpToString(LogicalOp op) {
  switch (op) {
    case LogicalOp::kAnd:
      return "AND";
    case LogicalOp::kOr:
      return "OR";
    case LogicalOp::kNot:
      return "NOT";
  }
  return "?";
}

Status Expr::Bind(const Schema& input) {
  for (auto& c : children_) {
    CV_RETURN_NOT_OK(c->Bind(input));
  }
  bound_ = true;
  return Status::OK();
}

Status Expr::Evaluate(const Batch& input, Column* out) const {
  *out = Column(output_type_);
  out->Reserve(input.num_rows());
  for (size_t i = 0; i < input.num_rows(); ++i) {
    out->AppendValue(EvaluateRow(input, i));
  }
  return Status::OK();
}

void Expr::HashInto(HashBuilder* hb, SignatureMode mode) const {
  hb->Add(static_cast<int>(kind_));
  hb->Add(static_cast<uint64_t>(children_.size()));
  for (const auto& c : children_) c->HashInto(hb, mode);
}

// --- ColumnRefExpr ----------------------------------------------------------

Status ColumnRefExpr::Bind(const Schema& input) {
  index_ = input.FieldIndex(name_);
  if (index_ < 0) {
    return Status::InvalidArgument("unknown column '" + name_ + "' in [" +
                                   input.ToString() + "]");
  }
  output_type_ = input.field(static_cast<size_t>(index_)).type;
  bound_ = true;
  return Status::OK();
}

Value ColumnRefExpr::EvaluateRow(const Batch& input, size_t row) const {
  assert(index_ >= 0);
  return input.column(static_cast<size_t>(index_)).GetValue(row);
}

Status ColumnRefExpr::Evaluate(const Batch& input, Column* out) const {
  assert(index_ >= 0);
  // Fast path: copy the referenced column wholesale.
  const Column& src = input.column(static_cast<size_t>(index_));
  *out = Column(src.type());
  out->Reserve(src.size());
  for (size_t i = 0; i < src.size(); ++i) out->AppendFrom(src, i);
  return Status::OK();
}

void ColumnRefExpr::HashInto(HashBuilder* hb, SignatureMode mode) const {
  Expr::HashInto(hb, mode);
  hb->Add(std::string_view(name_));
}

ExprPtr ColumnRefExpr::Clone() const {
  return std::make_shared<ColumnRefExpr>(name_);
}

// --- LiteralExpr ------------------------------------------------------------

Status LiteralExpr::Bind(const Schema&) {
  output_type_ = value_.type();
  bound_ = true;
  return Status::OK();
}

Value LiteralExpr::EvaluateRow(const Batch&, size_t) const { return value_; }

void LiteralExpr::HashInto(HashBuilder* hb, SignatureMode mode) const {
  Expr::HashInto(hb, mode);
  hb->Add(static_cast<int>(value_.type()));
  // Date literals usually come from recurring-instance predicates; they are
  // abstracted away in normalized mode like explicit parameters (Sec 3).
  if (mode == SignatureMode::kNormalized &&
      value_.type() == DataType::kDate) {
    hb->Add(std::string_view("<date>"));
    return;
  }
  value_.HashInto(hb);
}

ExprPtr LiteralExpr::Clone() const {
  return std::make_shared<LiteralExpr>(value_);
}

// --- ParameterExpr ----------------------------------------------------------

Status ParameterExpr::Bind(const Schema&) {
  output_type_ = value_.type();
  bound_ = true;
  return Status::OK();
}

Value ParameterExpr::EvaluateRow(const Batch&, size_t) const { return value_; }

void ParameterExpr::HashInto(HashBuilder* hb, SignatureMode mode) const {
  Expr::HashInto(hb, mode);
  hb->Add(std::string_view(name_));
  if (mode == SignatureMode::kPrecise) {
    value_.HashInto(hb);
  }
}

ExprPtr ParameterExpr::Clone() const {
  return std::make_shared<ParameterExpr>(name_, value_);
}

// --- ComparisonExpr ---------------------------------------------------------

Status ComparisonExpr::Bind(const Schema& input) {
  CV_RETURN_NOT_OK(Expr::Bind(input));
  DataType lt = children_[0]->output_type();
  DataType rt = children_[1]->output_type();
  bool l_str = lt == DataType::kString;
  bool r_str = rt == DataType::kString;
  if (l_str != r_str) {
    return Status::TypeError("cannot compare " +
                             std::string(DataTypeToString(lt)) + " with " +
                             DataTypeToString(rt));
  }
  output_type_ = DataType::kBool;
  return Status::OK();
}

Value ComparisonExpr::EvaluateRow(const Batch& input, size_t row) const {
  Value l = children_[0]->EvaluateRow(input, row);
  Value r = children_[1]->EvaluateRow(input, row);
  if (l.is_null() || r.is_null()) return Value::Null(DataType::kBool);
  int c = l.Compare(r);
  switch (op_) {
    case CompareOp::kEq:
      return Value::Bool(c == 0);
    case CompareOp::kNe:
      return Value::Bool(c != 0);
    case CompareOp::kLt:
      return Value::Bool(c < 0);
    case CompareOp::kLe:
      return Value::Bool(c <= 0);
    case CompareOp::kGt:
      return Value::Bool(c > 0);
    case CompareOp::kGe:
      return Value::Bool(c >= 0);
  }
  return Value::Null(DataType::kBool);
}

void ComparisonExpr::HashInto(HashBuilder* hb, SignatureMode mode) const {
  Expr::HashInto(hb, mode);
  hb->Add(static_cast<int>(op_));
}

std::string ComparisonExpr::ToString() const {
  return "(" + children_[0]->ToString() + " " + CompareOpToString(op_) + " " +
         children_[1]->ToString() + ")";
}

ExprPtr ComparisonExpr::Clone() const {
  return std::make_shared<ComparisonExpr>(op_, children_[0]->Clone(),
                                          children_[1]->Clone());
}

// --- ArithmeticExpr ---------------------------------------------------------

Status ArithmeticExpr::Bind(const Schema& input) {
  CV_RETURN_NOT_OK(Expr::Bind(input));
  DataType lt = children_[0]->output_type();
  DataType rt = children_[1]->output_type();
  if (lt == DataType::kString || rt == DataType::kString ||
      lt == DataType::kBool || rt == DataType::kBool) {
    return Status::TypeError("arithmetic requires numeric operands");
  }
  if (op_ == ArithmeticOp::kDiv) {
    output_type_ = DataType::kDouble;
  } else if (lt == DataType::kDouble || rt == DataType::kDouble) {
    output_type_ = DataType::kDouble;
  } else {
    output_type_ = DataType::kInt64;
  }
  return Status::OK();
}

Value ArithmeticExpr::EvaluateRow(const Batch& input, size_t row) const {
  Value l = children_[0]->EvaluateRow(input, row);
  Value r = children_[1]->EvaluateRow(input, row);
  if (l.is_null() || r.is_null()) return Value::Null(output_type_);
  if (output_type_ == DataType::kInt64) {
    int64_t a = l.int64_value();
    int64_t b = r.int64_value();
    switch (op_) {
      case ArithmeticOp::kAdd:
        return Value::Int64(a + b);
      case ArithmeticOp::kSub:
        return Value::Int64(a - b);
      case ArithmeticOp::kMul:
        return Value::Int64(a * b);
      case ArithmeticOp::kMod:
        return b == 0 ? Value::Null(DataType::kInt64)
                      : Value::Int64(a % b);
      case ArithmeticOp::kDiv:
        break;  // handled below as double
    }
  }
  double a = l.AsDouble();
  double b = r.AsDouble();
  switch (op_) {
    case ArithmeticOp::kAdd:
      return Value::Double(a + b);
    case ArithmeticOp::kSub:
      return Value::Double(a - b);
    case ArithmeticOp::kMul:
      return Value::Double(a * b);
    case ArithmeticOp::kDiv:
      return b == 0 ? Value::Null(DataType::kDouble) : Value::Double(a / b);
    case ArithmeticOp::kMod:
      return b == 0 ? Value::Null(DataType::kDouble)
                    : Value::Double(std::fmod(a, b));
  }
  return Value::Null(output_type_);
}

void ArithmeticExpr::HashInto(HashBuilder* hb, SignatureMode mode) const {
  Expr::HashInto(hb, mode);
  hb->Add(static_cast<int>(op_));
}

std::string ArithmeticExpr::ToString() const {
  return "(" + children_[0]->ToString() + " " + ArithmeticOpToString(op_) +
         " " + children_[1]->ToString() + ")";
}

ExprPtr ArithmeticExpr::Clone() const {
  return std::make_shared<ArithmeticExpr>(op_, children_[0]->Clone(),
                                          children_[1]->Clone());
}

// --- LogicalExpr ------------------------------------------------------------

Status LogicalExpr::Bind(const Schema& input) {
  CV_RETURN_NOT_OK(Expr::Bind(input));
  size_t expected = op_ == LogicalOp::kNot ? 1 : 2;
  if (children_.size() != expected) {
    return Status::InvalidArgument(
        StrFormat("%s expects %zu operands", LogicalOpToString(op_),
                  expected));
  }
  for (const auto& c : children_) {
    if (c->output_type() != DataType::kBool) {
      return Status::TypeError("logical operands must be bool");
    }
  }
  output_type_ = DataType::kBool;
  return Status::OK();
}

Value LogicalExpr::EvaluateRow(const Batch& input, size_t row) const {
  if (op_ == LogicalOp::kNot) {
    Value v = children_[0]->EvaluateRow(input, row);
    if (v.is_null()) return v;
    return Value::Bool(!v.bool_value());
  }
  Value l = children_[0]->EvaluateRow(input, row);
  if (op_ == LogicalOp::kAnd) {
    if (!l.is_null() && !l.bool_value()) return Value::Bool(false);
    Value r = children_[1]->EvaluateRow(input, row);
    if (!r.is_null() && !r.bool_value()) return Value::Bool(false);
    if (l.is_null() || r.is_null()) return Value::Null(DataType::kBool);
    return Value::Bool(true);
  }
  // OR
  if (!l.is_null() && l.bool_value()) return Value::Bool(true);
  Value r = children_[1]->EvaluateRow(input, row);
  if (!r.is_null() && r.bool_value()) return Value::Bool(true);
  if (l.is_null() || r.is_null()) return Value::Null(DataType::kBool);
  return Value::Bool(false);
}

void LogicalExpr::HashInto(HashBuilder* hb, SignatureMode mode) const {
  Expr::HashInto(hb, mode);
  hb->Add(static_cast<int>(op_));
}

std::string LogicalExpr::ToString() const {
  if (op_ == LogicalOp::kNot) return "NOT " + children_[0]->ToString();
  return "(" + children_[0]->ToString() + " " + LogicalOpToString(op_) + " " +
         children_[1]->ToString() + ")";
}

ExprPtr LogicalExpr::Clone() const {
  std::vector<ExprPtr> kids;
  for (const auto& c : children_) kids.push_back(c->Clone());
  return std::make_shared<LogicalExpr>(op_, std::move(kids));
}

// --- FunctionCallExpr -------------------------------------------------------

Status FunctionCallExpr::Bind(const Schema& input) {
  CV_RETURN_NOT_OK(Expr::Bind(input));
  CV_ASSIGN_OR_RETURN(const FunctionEntry* entry,
                      FunctionRegistry::Global()->Lookup(name_));
  std::vector<DataType> arg_types;
  for (const auto& c : children_) arg_types.push_back(c->output_type());
  CV_ASSIGN_OR_RETURN(output_type_, entry->infer(arg_types));
  return Status::OK();
}

Value FunctionCallExpr::EvaluateRow(const Batch& input, size_t row) const {
  auto entry = FunctionRegistry::Global()->Lookup(name_);
  assert(entry.ok());
  std::vector<Value> args;
  args.reserve(children_.size());
  for (const auto& c : children_) args.push_back(c->EvaluateRow(input, row));
  return (*entry)->fn(args);
}

void FunctionCallExpr::HashInto(HashBuilder* hb, SignatureMode mode) const {
  Expr::HashInto(hb, mode);
  hb->Add(std::string_view(name_));
}

std::string FunctionCallExpr::ToString() const {
  std::vector<std::string> args;
  for (const auto& c : children_) args.push_back(c->ToString());
  return name_ + "(" + Join(args, ", ") + ")";
}

ExprPtr FunctionCallExpr::Clone() const {
  std::vector<ExprPtr> kids;
  for (const auto& c : children_) kids.push_back(c->Clone());
  return std::make_shared<FunctionCallExpr>(name_, std::move(kids));
}

// --- UdfCallExpr ------------------------------------------------------------

Status UdfCallExpr::Bind(const Schema& input) {
  CV_RETURN_NOT_OK(Expr::Bind(input));
  CV_ASSIGN_OR_RETURN(const UdfRegistry::UdfEntry* entry,
                      UdfRegistry::Global()->Lookup(udf_name_));
  output_type_ = entry->output_type;
  return Status::OK();
}

Value UdfCallExpr::EvaluateRow(const Batch& input, size_t row) const {
  auto entry = UdfRegistry::Global()->Lookup(udf_name_);
  assert(entry.ok());
  std::vector<Value> args;
  args.reserve(children_.size());
  for (const auto& c : children_) args.push_back(c->EvaluateRow(input, row));
  return (*entry)->fn(args);
}

void UdfCallExpr::HashInto(HashBuilder* hb, SignatureMode mode) const {
  Expr::HashInto(hb, mode);
  hb->Add(std::string_view(udf_name_));
  hb->Add(std::string_view(library_));
  if (mode == SignatureMode::kPrecise) {
    // Library version participates only in the precise signature: a
    // republished library invalidates reuse but not the template identity.
    hb->Add(std::string_view(library_version_));
  }
}

std::string UdfCallExpr::ToString() const {
  std::vector<std::string> args;
  for (const auto& c : children_) args.push_back(c->ToString());
  return udf_name_ + "[" + library_ + "@" + library_version_ + "](" +
         Join(args, ", ") + ")";
}

ExprPtr UdfCallExpr::Clone() const {
  std::vector<ExprPtr> kids;
  for (const auto& c : children_) kids.push_back(c->Clone());
  return std::make_shared<UdfCallExpr>(udf_name_, library_, library_version_,
                                       std::move(kids));
}

// --- Construction helpers ---------------------------------------------------

ExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}
ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Lit(int64_t v) { return Lit(Value::Int64(v)); }
ExprPtr Lit(double v) { return Lit(Value::Double(v)); }
ExprPtr Lit(const char* s) { return Lit(Value::String(s)); }
ExprPtr Lit(bool v) { return Lit(Value::Bool(v)); }
ExprPtr DateLit(const std::string& iso) {
  return Lit(Value::DateFromString(iso));
}
ExprPtr Param(std::string name, Value v) {
  return std::make_shared<ParameterExpr>(std::move(name), std::move(v));
}
ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return std::make_shared<ComparisonExpr>(CompareOp::kEq, std::move(a),
                                          std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return std::make_shared<ComparisonExpr>(CompareOp::kNe, std::move(a),
                                          std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return std::make_shared<ComparisonExpr>(CompareOp::kLt, std::move(a),
                                          std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return std::make_shared<ComparisonExpr>(CompareOp::kLe, std::move(a),
                                          std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return std::make_shared<ComparisonExpr>(CompareOp::kGt, std::move(a),
                                          std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return std::make_shared<ComparisonExpr>(CompareOp::kGe, std::move(a),
                                          std::move(b));
}
ExprPtr Add(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithmeticExpr>(ArithmeticOp::kAdd, std::move(a),
                                          std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithmeticExpr>(ArithmeticOp::kSub, std::move(a),
                                          std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithmeticExpr>(ArithmeticOp::kMul, std::move(a),
                                          std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithmeticExpr>(ArithmeticOp::kDiv, std::move(a),
                                          std::move(b));
}
ExprPtr Mod(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithmeticExpr>(ArithmeticOp::kMod, std::move(a),
                                          std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> kids{std::move(a), std::move(b)};
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(kids));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> kids{std::move(a), std::move(b)};
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(kids));
}
ExprPtr Not(ExprPtr a) {
  std::vector<ExprPtr> kids{std::move(a)};
  return std::make_shared<LogicalExpr>(LogicalOp::kNot, std::move(kids));
}
ExprPtr Func(std::string name, std::vector<ExprPtr> args) {
  return std::make_shared<FunctionCallExpr>(std::move(name), std::move(args));
}
ExprPtr Udf(std::string name, std::string library, std::string version,
            std::vector<ExprPtr> args) {
  return std::make_shared<UdfCallExpr>(std::move(name), std::move(library),
                                       std::move(version), std::move(args));
}


// --- Analysis / rewrite utilities ---------------------------------------------

void CollectColumnRefs(const Expr& expr, std::set<std::string>* out) {
  if (expr.kind() == ExprKind::kColumnRef) {
    out->insert(static_cast<const ColumnRefExpr&>(expr).name());
  }
  for (const auto& c : expr.children()) {
    CollectColumnRefs(*c, out);
  }
}

ExprPtr SubstituteColumnRefs(
    const Expr& expr,
    const std::function<ExprPtr(const std::string&)>& replace) {
  if (expr.kind() == ExprKind::kColumnRef) {
    return replace(static_cast<const ColumnRefExpr&>(expr).name());
  }
  // Substitute children, then rebuild the node around them.
  std::vector<ExprPtr> kids;
  kids.reserve(expr.children().size());
  for (const auto& c : expr.children()) {
    ExprPtr sub = SubstituteColumnRefs(*c, replace);
    if (sub == nullptr) return nullptr;
    kids.push_back(std::move(sub));
  }
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
      return nullptr;  // unreachable
    case ExprKind::kLiteral:
      return std::make_shared<LiteralExpr>(
          static_cast<const LiteralExpr&>(expr).value());
    case ExprKind::kParameter: {
      const auto& p = static_cast<const ParameterExpr&>(expr);
      return std::make_shared<ParameterExpr>(p.name(), p.value());
    }
    case ExprKind::kComparison:
      return std::make_shared<ComparisonExpr>(
          static_cast<const ComparisonExpr&>(expr).op(), std::move(kids[0]),
          std::move(kids[1]));
    case ExprKind::kArithmetic:
      return std::make_shared<ArithmeticExpr>(
          static_cast<const ArithmeticExpr&>(expr).op(), std::move(kids[0]),
          std::move(kids[1]));
    case ExprKind::kLogical:
      return std::make_shared<LogicalExpr>(
          static_cast<const LogicalExpr&>(expr).op(), std::move(kids));
    case ExprKind::kFunctionCall:
      return std::make_shared<FunctionCallExpr>(
          static_cast<const FunctionCallExpr&>(expr).name(), std::move(kids));
    case ExprKind::kUdfCall: {
      const auto& u = static_cast<const UdfCallExpr&>(expr);
      return std::make_shared<UdfCallExpr>(u.udf_name(), u.library(),
                                           u.library_version(),
                                           std::move(kids));
    }
  }
  return nullptr;
}

}  // namespace cloudviews
