# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("types")
subdirs("expr")
subdirs("plan")
subdirs("signature")
subdirs("storage")
subdirs("exec")
subdirs("optimizer")
subdirs("parser")
subdirs("metadata")
subdirs("runtime")
subdirs("analyzer")
subdirs("core")
subdirs("workload")
subdirs("tpcds")
