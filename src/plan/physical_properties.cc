#include "plan/physical_properties.h"

#include "common/string_util.h"

namespace cloudviews {

const char* PartitionSchemeToString(PartitionScheme s) {
  switch (s) {
    case PartitionScheme::kAny:
      return "any";
    case PartitionScheme::kSingleton:
      return "singleton";
    case PartitionScheme::kHash:
      return "hash";
    case PartitionScheme::kRange:
      return "range";
    case PartitionScheme::kRoundRobin:
      return "roundrobin";
  }
  return "?";
}

bool Partitioning::Satisfies(const Partitioning& required) const {
  if (required.scheme == PartitionScheme::kAny) return true;
  if (scheme != required.scheme) return false;
  if (scheme == PartitionScheme::kHash || scheme == PartitionScheme::kRange) {
    if (columns != required.columns) return false;
  }
  if (required.partition_count != 0 &&
      partition_count != required.partition_count) {
    return false;
  }
  return true;
}

bool Partitioning::operator==(const Partitioning& o) const {
  return scheme == o.scheme && columns == o.columns &&
         partition_count == o.partition_count;
}

void Partitioning::HashInto(HashBuilder* hb) const {
  hb->Add(static_cast<int>(scheme));
  hb->Add(static_cast<uint64_t>(columns.size()));
  for (const auto& c : columns) hb->Add(std::string_view(c));
  hb->Add(partition_count);
}

std::string Partitioning::ToString() const {
  if (scheme == PartitionScheme::kAny) return "any";
  std::string out = PartitionSchemeToString(scheme);
  if (!columns.empty()) {
    out += "(" + Join(columns, ",") + ")";
  }
  if (partition_count > 0) out += StrFormat(" x%d", partition_count);
  return out;
}

bool SortOrder::Satisfies(const SortOrder& required) const {
  if (required.keys.empty()) return true;
  if (keys.size() < required.keys.size()) return false;
  for (size_t i = 0; i < required.keys.size(); ++i) {
    if (!(keys[i] == required.keys[i])) return false;
  }
  return true;
}

void SortOrder::HashInto(HashBuilder* hb) const {
  hb->Add(static_cast<uint64_t>(keys.size()));
  for (const auto& k : keys) {
    hb->Add(std::string_view(k.column));
    hb->Add(k.ascending);
  }
}

std::string SortOrder::ToString() const {
  if (keys.empty()) return "unsorted";
  std::vector<std::string> parts;
  for (const auto& k : keys) {
    parts.push_back(k.column + (k.ascending ? " ASC" : " DESC"));
  }
  return Join(parts, ", ");
}

std::string PhysicalProperties::ToString() const {
  return "[" + partitioning.ToString() + "; " + sort_order.ToString() + "]";
}

}  // namespace cloudviews
