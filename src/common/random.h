#ifndef CLOUDVIEWS_COMMON_RANDOM_H_
#define CLOUDVIEWS_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cloudviews {

/// \brief Deterministic PRNG (xoshiro256**) used everywhere randomness is
/// needed, so that workload generation and experiments are reproducible
/// from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform real in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Gaussian via Box-Muller.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given mean.
  double Exponential(double mean);

  /// Random lowercase identifier of the given length.
  std::string Identifier(size_t len);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
};

/// \brief Zipf-distributed integer generator over {0, ..., n-1}.
///
/// The paper's overlap frequencies are heavily skewed (Sec 2.4: median 2,
/// 99th percentile 36); Zipf sampling reproduces that skew in the synthetic
/// workload. Uses the standard rejection-inversion-free CDF table approach
/// (fine for the n <= ~1e6 used here).
class ZipfGenerator {
 public:
  ZipfGenerator(size_t n, double theta);

  size_t Sample(Rng* rng) const;

  size_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  size_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_COMMON_RANDOM_H_
