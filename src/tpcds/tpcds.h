#ifndef CLOUDVIEWS_TPCDS_TPCDS_H_
#define CLOUDVIEWS_TPCDS_TPCDS_H_

#include <string>
#include <vector>

#include "runtime/job_service.h"
#include "storage/storage_manager.h"

namespace cloudviews {
namespace tpcds {

/// \brief Scaled-down, deterministic TPC-DS-style dataset (Sec 7.2 used the
/// real 1TB benchmark; this preserves its star-schema shape: three sales
/// channels sharing conformed dimensions, which is what creates the
/// overlapping scan/join subexpressions CloudViews exploits).
struct TpcdsOptions {
  size_t store_sales_rows = 20000;
  size_t web_sales_rows = 8000;
  size_t catalog_sales_rows = 10000;
  size_t items = 200;
  size_t customers = 1000;
  size_t stores = 12;
  size_t promotions = 30;
  /// date_dim covers two years starting 1999-01-01.
  int start_year = 1999;
  int num_days = 730;
  uint64_t seed = 99;
};

// Table schemas.
Schema DateDimSchema();
Schema ItemSchema();
Schema CustomerSchema();
Schema StoreSchema();
Schema PromotionSchema();
Schema StoreSalesSchema();
Schema WebSalesSchema();
Schema CatalogSalesSchema();

/// Stream name of a table ("tpcds_store_sales", ...).
std::string TableStream(const std::string& table);

/// \brief Generates and writes all eight tables.
class TpcdsGenerator {
 public:
  explicit TpcdsGenerator(TpcdsOptions options);
  TpcdsGenerator() : TpcdsGenerator(TpcdsOptions()) {}

  const TpcdsOptions& options() const { return options_; }

  Status WriteTables(StorageManager* storage) const;

 private:
  TpcdsOptions options_;
};

/// Number of benchmark queries (matches TPC-DS).
constexpr int kNumQueries = 99;

/// \brief Builds query q (1-based) as a logical plan ending in an Output to
/// "tpcds_q<q>_out".
///
/// The 99 queries are structurally representative simplifications: star
/// joins from one (or a union of two) sales channels through conformed
/// dimensions with year/month predicates, grouped aggregations, and
/// sort/top tails. Queries are generated from a deterministic spec table
/// so that the channel x year scan-join prefixes repeat across many
/// queries — the shared subexpressions the paper's Fig 13 exercises.
PlanNodePtr BuildQuery(int q);

/// Query q wrapped as a job submission for the CloudViews job service.
JobDefinition MakeQueryJob(int q);

}  // namespace tpcds
}  // namespace cloudviews

#endif  // CLOUDVIEWS_TPCDS_TPCDS_H_
