#include "net/outcome.h"

#include "plan/plan_node.h"
#include "types/batch.h"

namespace cloudviews {
namespace net {

Hash128 FingerprintStream(const StreamData& stream) {
  HashBuilder hb;
  hb.Add(std::string_view("stream-fingerprint-v1"));
  hb.Add(static_cast<uint64_t>(stream.schema.num_fields()));
  for (const Field& f : stream.schema.fields()) {
    hb.Add(std::string_view(f.name));
    hb.Add(static_cast<uint64_t>(f.type));
  }
  for (const Batch& batch : stream.batches) {
    size_t rows = batch.num_rows();
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < batch.num_columns(); ++c) {
        const Column& col = batch.column(c);
        if (col.IsNull(r)) {
          hb.Add(std::string_view("null"));
        } else {
          col.GetValue(r).HashInto(&hb);
        }
      }
    }
  }
  return hb.Finish();
}

JobOutcome OutcomeFromJobResult(const JobResult& result,
                                const StorageManager* storage) {
  JobOutcome o;
  o.job_id = result.job_id;
  o.catalog_epoch = result.catalog_epoch;
  o.output_rows = result.run_stats.output_rows;
  o.output_bytes = result.run_stats.output_bytes;
  o.views_reused = result.views_reused;
  o.views_materialized = result.views_materialized;
  o.reuse_rejected_by_cost = result.reuse_rejected_by_cost;
  o.materialize_lock_denied = result.materialize_lock_denied;
  o.candidates_filtered = result.candidates_filtered;
  o.containment_verified = result.containment_verified;
  o.containment_rejected = result.containment_rejected;
  o.views_reused_subsumed = result.views_reused_subsumed;
  o.compensation_nodes_added = result.compensation_nodes_added;
  o.views_fallback = result.views_fallback;
  o.lookup_degraded = result.lookup_degraded;
  o.plan_cache_hit = result.plan_cache_hit;
  if (storage != nullptr && result.executed_plan != nullptr &&
      result.executed_plan->kind() == OpKind::kOutput) {
    const auto& out_node =
        static_cast<const OutputNode&>(*result.executed_plan);
    auto handle = storage->OpenStream(out_node.stream_name());
    if (handle.ok()) {
      o.output_fingerprint = FingerprintStream(**handle);
    }
    // A missing output stream leaves the zero fingerprint: the byte-identity
    // check then compares zero against zero only if both sides failed the
    // same way, so a one-sided read failure still shows up as a mismatch in
    // rows/bytes.
  }
  return o;
}

WireTimings TimingsFromJobResult(const JobResult& result) {
  WireTimings t;
  t.latency_seconds = result.run_stats.latency_seconds;
  t.cpu_seconds = result.run_stats.cpu_seconds;
  t.compile_seconds = result.compile_seconds;
  t.metadata_lookup_seconds = result.metadata_lookup_seconds;
  t.estimated_cost = result.estimated_cost;
  return t;
}

}  // namespace net
}  // namespace cloudviews
