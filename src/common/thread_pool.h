#ifndef CLOUDVIEWS_COMMON_THREAD_POOL_H_
#define CLOUDVIEWS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "obs/metrics.h"

namespace cloudviews {

/// CPU seconds consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID);
/// the honest basis for the paper's "CPU hours" resource accounting (wall
/// time inflates under thread oversubscription).
double ThreadCpuSeconds();

/// \brief Thread-safe accumulator of CPU time contributed by many threads.
///
/// Each worker measures its own thread-CPU-clock delta and adds it here, so
/// an operator's cpu_seconds is the sum over every thread that touched it —
/// the attribution invariant the CloudViews feedback loop depends on.
class CpuAccumulator {
 public:
  void AddSeconds(double seconds) {
    nanos_.fetch_add(static_cast<int64_t>(seconds * 1e9),
                     std::memory_order_relaxed);
  }
  double seconds() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }

 private:
  std::atomic<int64_t> nanos_{0};
};

/// RAII helper: credits the enclosing scope's thread-CPU delta to an
/// accumulator (no-op when the accumulator is null).
class ScopedThreadCpuTimer {
 public:
  explicit ScopedThreadCpuTimer(CpuAccumulator* acc)
      : acc_(acc), start_(acc ? ThreadCpuSeconds() : 0) {}
  ~ScopedThreadCpuTimer() {
    if (acc_ != nullptr) acc_->AddSeconds(ThreadCpuSeconds() - start_);
  }
  ScopedThreadCpuTimer(const ScopedThreadCpuTimer&) = delete;
  ScopedThreadCpuTimer& operator=(const ScopedThreadCpuTimer&) = delete;

 private:
  CpuAccumulator* acc_;
  double start_;
};

/// \brief A shared fixed-size worker pool for morsel-driven execution.
///
/// One pool is owned by the job service and shared by every concurrently
/// running job: both independent plan subtrees and intra-operator morsel
/// work are scheduled here. Tasks must not block except through
/// TaskGroup::Wait, which lends the waiting thread to the pool (so nested
/// fork/join parallelism cannot deadlock on a bounded pool).
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1). When `metrics` is
  /// non-null the pool publishes task throughput, queue depth, saturation
  /// (busy workers), and task wait/run histograms under
  /// `cv_threadpool_*{pool=<name>}`; `clock` defaults to the real
  /// monotonic clock and only matters for the wait/run timings.
  explicit ThreadPool(int threads,
                      obs::MetricsRegistry* metrics = nullptr,
                      const std::string& name = "exec",
                      MonotonicClock* clock = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  friend class TaskGroup;

  struct QueuedTask {
    std::function<void()> fn;
    /// Enqueue timestamp (0 when the pool is uninstrumented).
    double enqueued_at = 0;
  };
  /// Instrument handles, all null when the pool is uninstrumented; a null
  /// check is the entire per-task overhead in that case.
  struct Instruments {
    obs::Gauge* threads = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* busy_workers = nullptr;
    obs::Counter* tasks = nullptr;
    obs::Histogram* task_wait = nullptr;
    obs::Histogram* task_run = nullptr;
  };

  void Enqueue(std::function<void()> task) EXCLUDES(mu_);
  /// Runs one queued task on the calling thread; false if the queue was
  /// empty. Used by waiters to help instead of blocking.
  bool RunOne() EXCLUDES(mu_);
  void WorkerLoop() EXCLUDES(mu_);
  /// Timing + saturation accounting around one dequeued task.
  void RunTask(QueuedTask task);

  MonotonicClock* clock_;
  Instruments obs_;
  Mutex mu_;
  CondVar cv_;
  std::deque<QueuedTask> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

/// \brief A fork/join scope over pool tasks.
///
/// With a null pool every Spawn runs inline on the calling thread, giving
/// the deterministic single-threaded schedule (`worker_threads = 1`).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Spawn(std::function<void()> fn) EXCLUDES(mu_);

  /// Blocks until every spawned task finished; the calling thread executes
  /// queued pool tasks while it waits.
  void Wait() EXCLUDES(mu_);

 private:
  ThreadPool* pool_;
  Mutex mu_;
  CondVar done_cv_;
  size_t pending_ GUARDED_BY(mu_) = 0;
};

/// Runs fn(0..n-1); morsel indices are distributed over the pool (inline
/// when pool is null or n < 2). Blocks until all iterations finished.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_COMMON_THREAD_POOL_H_
