#ifndef CLOUDVIEWS_BENCH_BENCH_UTIL_H_
#define CLOUDVIEWS_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/cloudviews.h"
#include "workload/production_workload.h"
#include "workload/synthetic.h"

namespace cloudviews {
namespace bench {

/// Prints a figure banner: number, title, and the paper's claim.
void FigureHeader(const std::string& figure, const std::string& title,
                  const std::string& paper_claim);

/// "paper vs measured" one-liner for the summary sections.
void PaperVsMeasured(const std::string& metric, const std::string& paper,
                     const std::string& measured);

/// Percentage improvement of `with` over `base` (positive = faster).
double PctImprovement(double base, double with);

/// Runs one recurring instance of a synthetic cluster workload (CloudViews
/// off) and returns the populated system for analysis.
struct ClusterRun {
  std::unique_ptr<CloudViews> cv;
  size_t jobs_submitted = 0;
  size_t jobs_failed = 0;
};
ClusterRun RunClusterInstance(const ClusterProfile& profile,
                              const std::string& date);

/// Per-job measurements of the Sec 7.1 production comparison.
struct ProductionComparison {
  std::vector<double> baseline_latency;   // seconds, per job (arrival order)
  std::vector<double> cloudviews_latency;
  std::vector<double> baseline_cpu;
  std::vector<double> cloudviews_cpu;
  std::vector<int> views_built;   // per job
  std::vector<int> views_reused;  // per job
  int job_groups_built = 0;
};

/// Replays the 32-job production workload: day-1 history, analyzer, then a
/// day-2 baseline pass and a day-2 CloudViews pass over identical inputs.
ProductionComparison RunProductionComparison(size_t rows_per_input = 20000);

}  // namespace bench
}  // namespace cloudviews

#endif  // CLOUDVIEWS_BENCH_BENCH_UTIL_H_
