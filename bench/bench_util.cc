#include "bench/bench_util.h"

#include <cstdio>

#include "common/string_util.h"

namespace cloudviews {
namespace bench {

void FigureHeader(const std::string& figure, const std::string& title,
                  const std::string& paper_claim) {
  std::printf("\n");
  std::printf(
      "==============================================================\n");
  std::printf("%s: %s\n", figure.c_str(), title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf(
      "==============================================================\n");
}

void PaperVsMeasured(const std::string& metric, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-42s paper: %-18s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

double PctImprovement(double base, double with) {
  if (base <= 0) return 0;
  return 100.0 * (base - with) / base;
}

ClusterRun RunClusterInstance(const ClusterProfile& profile,
                              const std::string& date) {
  ClusterRun run;
  run.cv = std::make_unique<CloudViews>();
  SyntheticWorkloadGenerator gen(profile);
  gen.WriteInputs(run.cv->storage(), date);
  for (const auto& def : gen.Instance(date)) {
    auto result = run.cv->Submit(def, /*enable_cloudviews=*/false);
    ++run.jobs_submitted;
    if (!result.ok()) ++run.jobs_failed;
  }
  return run;
}

ProductionComparison RunProductionComparison(size_t rows_per_input) {
  ProductionWorkload::Options options;
  options.rows_per_input = rows_per_input;
  ProductionWorkload workload(options);

  CloudViewsConfig config;
  // Sec 7.1 selection: frequency >= 3, cost >= 20% of the job, at most one
  // overlapping computation per job, top-3 by total utility.
  config.analyzer.selection.top_k = 3;
  config.analyzer.selection.min_frequency = 3;
  config.analyzer.selection.min_cost_fraction_of_job = 0.2;
  config.analyzer.selection.max_per_job = 1;
  CloudViews cv(config);

  // Day 1: history.
  workload.WriteInputs(cv.storage(), "2018-01-01");
  for (const auto& def : workload.Instance("2018-01-01")) {
    auto r = cv.Submit(def, false);
    if (!r.ok()) {
      std::fprintf(stderr, "day-1 job failed: %s\n",
                   r.status().ToString().c_str());
    }
  }
  auto analysis = cv.RunAnalyzerAndLoad();

  ProductionComparison cmp;
  cmp.job_groups_built = static_cast<int>(analysis.annotations.size());

  // Day 2 inputs, shared by both passes.
  workload.WriteInputs(cv.storage(), "2018-01-02");
  auto day2 = workload.Instance("2018-01-02");

  // Baseline pass (CloudViews off).
  for (const auto& def : day2) {
    auto r = cv.Submit(def, false);
    cmp.baseline_latency.push_back(r.ok() ? r->run_stats.latency_seconds : 0);
    cmp.baseline_cpu.push_back(r.ok() ? r->run_stats.cpu_seconds : 0);
  }
  // CloudViews pass, arrival order (Sec 7.1 replays the past order).
  for (const auto& def : day2) {
    auto r = cv.Submit(def, true);
    cmp.cloudviews_latency.push_back(r.ok() ? r->run_stats.latency_seconds
                                            : 0);
    cmp.cloudviews_cpu.push_back(r.ok() ? r->run_stats.cpu_seconds : 0);
    cmp.views_built.push_back(r.ok() ? r->views_materialized : 0);
    cmp.views_reused.push_back(r.ok() ? r->views_reused : 0);
  }
  return cmp;
}

}  // namespace bench
}  // namespace cloudviews
