# Empty dependencies file for fig12_production_cpu.
# This may be replaced when dependencies are built.
