#ifndef CLOUDVIEWS_COMMON_GUID_H_
#define CLOUDVIEWS_COMMON_GUID_H_

#include <string>

namespace cloudviews {

/// Process-unique, deterministic-order GUID ("g-<counter hex>"). Stands in
/// for the data-version GUIDs SCOPE attaches to stream versions; equality
/// is all the system relies on.
std::string GenerateGuid();

}  // namespace cloudviews

#endif  // CLOUDVIEWS_COMMON_GUID_H_
