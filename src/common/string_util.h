#ifndef CLOUDVIEWS_COMMON_STRING_UTIL_H_
#define CLOUDVIEWS_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace cloudviews {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins parts with the separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Splits on the separator character; empty tokens are preserved.
std::vector<std::string> Split(std::string_view s, char separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lowercases ASCII characters.
std::string ToLower(std::string_view s);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Renders a byte count as "12.3 GB" style text.
std::string HumanBytes(double bytes);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_COMMON_STRING_UTIL_H_
