#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_pool.h"
#include "exec/batch_ops.h"
#include "exec/physical_operator.h"

namespace cloudviews {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

Batch CombineBatches(const Schema& schema,
                     const std::vector<Batch>& batches) {
  Batch out(schema);
  for (const auto& b : batches) {
    out.AppendRowsFrom(b, 0, b.num_rows());
  }
  return out;
}

Batch SortBatch(const Batch& data, const std::vector<SortKey>& keys) {
  ResolvedSortKeys resolved = ResolveSortKeys(data.schema(), keys);
  return GatherRows(data, StableSortOrder(data, resolved));
}

Result<std::vector<Batch>> PartitionBatch(const Batch& data,
                                          const Partitioning& partitioning) {
  int count = partitioning.partition_count > 0 ? partitioning.partition_count
                                               : 1;
  std::vector<Batch> parts;
  parts.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) parts.emplace_back(data.schema());

  switch (partitioning.scheme) {
    case PartitionScheme::kAny:
    case PartitionScheme::kSingleton: {
      parts[0] = data;
      return parts;
    }
    case PartitionScheme::kRoundRobin: {
      for (size_t r = 0; r < data.num_rows(); ++r) {
        parts[r % static_cast<size_t>(count)].AppendRowFrom(data, r);
      }
      return parts;
    }
    case PartitionScheme::kHash: {
      CV_ASSIGN_OR_RETURN(std::vector<int> cols,
                          ResolveColumns(data.schema(),
                                         partitioning.columns));
      for (size_t r = 0; r < data.num_rows(); ++r) {
        uint64_t h = RowKey(data, r, cols).lo;
        parts[h % static_cast<uint64_t>(count)].AppendRowFrom(data, r);
      }
      return parts;
    }
    case PartitionScheme::kRange: {
      // Approximate range partitioning: sort on the partition columns and
      // cut into equal-sized runs.
      std::vector<SortKey> keys;
      for (const auto& c : partitioning.columns) keys.push_back({c, true});
      Batch sorted = SortBatch(data, keys);
      size_t per = (sorted.num_rows() + static_cast<size_t>(count) - 1) /
                   static_cast<size_t>(count);
      if (per == 0) per = 1;
      for (size_t r = 0; r < sorted.num_rows(); ++r) {
        parts[std::min(r / per, static_cast<size_t>(count) - 1)]
            .AppendRowFrom(sorted, r);
      }
      return parts;
    }
  }
  return Status::Internal("unknown partition scheme");
}

/// Shared (per Execute call) driver state.
struct Executor::ExecState {
  /// Null runs everything inline on the submitting thread.
  ThreadPool* pool = nullptr;
  size_t morsel_rows = 4096;
  Mutex mu;
  /// Aggregate stats for the whole Execute call; concurrently-finishing
  /// operators insert their per-operator rows under mu.
  JobRunStats* stats PT_GUARDED_BY(mu) = nullptr;
};

Result<JobRunStats> Executor::Execute(const PlanNodePtr& root) {
  if (!root->bound()) {
    return Status::InvalidArgument("plan must be bound before execution");
  }
  JobRunStats stats;
  ExecState state;
  state.pool =
      ctx_.options.worker_threads > 1 ? ctx_.pool : nullptr;
  state.morsel_rows =
      ctx_.options.morsel_rows > 0
          ? static_cast<size_t>(ctx_.options.morsel_rows)
          : size_t{1};
  state.stats = &stats;
  auto start = Clock::now();
  CV_ASSIGN_OR_RETURN(MorselSet result, ExecuteNode(root.get(), &state));
  stats.latency_seconds = SecondsSince(start);
  for (const auto& [id, op] : stats.operators) {
    stats.cpu_seconds += op.cpu_seconds;
  }
  stats.output_rows = static_cast<double>(MorselRowCount(result));
  stats.output_bytes = static_cast<double>(MorselByteSize(result));
  return stats;
}

Result<MorselSet> Executor::ExecuteNode(PlanNode* node, ExecState* state) {
  auto subtree_start = Clock::now();

  // Execute children — independent subtrees — concurrently when a pool is
  // available. Error reporting is deterministic: the lowest-index failing
  // child wins regardless of completion order.
  size_t num_children = node->children().size();
  std::vector<MorselSet> inputs(num_children);
  std::vector<Status> child_status(num_children, Status::OK());
  if (state->pool != nullptr && num_children > 1) {
    TaskGroup group(state->pool);
    for (size_t i = 0; i < num_children; ++i) {
      group.Spawn([this, node, state, i, &inputs, &child_status] {
        auto r = ExecuteNode(node->children()[i].get(), state);
        if (r.ok()) {
          inputs[i] = std::move(r).ValueOrDie();
        } else {
          child_status[i] = r.status();
        }
      });
    }
    group.Wait();
  } else {
    for (size_t i = 0; i < num_children; ++i) {
      auto r = ExecuteNode(node->children()[i].get(), state);
      if (r.ok()) {
        inputs[i] = std::move(r).ValueOrDie();
      } else {
        child_status[i] = r.status();
      }
    }
  }
  for (auto& s : child_status) CV_RETURN_NOT_OK(s);

  // The operator's own work: open, phased morsel processing, close. Every
  // callback is wrapped in a thread-CPU timer; cpu_seconds is the sum of
  // the deltas across all workers that touched this operator.
  CpuAccumulator cpu;
  OperatorContext octx;
  octx.exec = &ctx_;
  octx.pool = state->pool;
  octx.morsel_rows = state->morsel_rows;
  octx.cpu = &cpu;

  auto own_start = Clock::now();
  CV_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalOperator> op,
                      MakePhysicalOperator(node));
  {
    ScopedThreadCpuTimer timer(&cpu);
    CV_RETURN_NOT_OK(op->Open(octx, std::move(inputs)));
  }
  for (size_t phase = 0; phase < op->num_phases(); ++phase) {
    {
      ScopedThreadCpuTimer timer(&cpu);
      CV_RETURN_NOT_OK(op->PreparePhase(octx, phase));
    }
    size_t n = op->NumMorsels(phase);
    std::vector<Status> morsel_status(n, Status::OK());
    ParallelFor(state->pool, n, [&](size_t m) {
      ScopedThreadCpuTimer timer(&cpu);
      morsel_status[m] = op->ProcessMorsel(octx, phase, m);
    });
    // Deterministic error selection: lowest morsel index wins.
    for (auto& s : morsel_status) CV_RETURN_NOT_OK(s);
  }
  MorselSet out;
  {
    ScopedThreadCpuTimer timer(&cpu);
    CV_ASSIGN_OR_RETURN(out, op->Close(octx));
  }

  auto end = Clock::now();
  OperatorRuntimeStats op_stats;
  op_stats.node_id = node->id();
  op_stats.kind = node->kind();
  op_stats.rows = static_cast<double>(MorselRowCount(out));
  op_stats.bytes = static_cast<double>(MorselByteSize(out));
  op_stats.exclusive_seconds =
      std::chrono::duration<double>(end - own_start).count();
  // Wall span of the whole subtree. With parallel children this is the
  // real elapsed time (not the sum of child times), so the invariant
  // job latency >= root inclusive >= any exclusive still holds.
  op_stats.inclusive_seconds =
      std::chrono::duration<double>(end - subtree_start).count();
  op_stats.cpu_seconds = cpu.seconds();
  {
    MutexLock lock(state->mu);
    state->stats->operators[node->id()] = op_stats;
  }
  return out;
}

}  // namespace cloudviews
