#include "net/wire.h"

#include <cstring>

namespace cloudviews {
namespace net {

namespace {

// memcpy through a uint64_t is the strict-aliasing-safe bit cast; C++17 has
// no std::bit_cast.
uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

bool IsRequestType(uint8_t t) {
  switch (static_cast<MsgType>(t)) {
    case MsgType::kSubmit:
    case MsgType::kStatusQuery:
    case MsgType::kProfileFetch:
    case MsgType::kServerStats:
      return true;
    default:
      return false;
  }
}

void WireWriter::U16(uint16_t v) {
  U8(static_cast<uint8_t>(v & 0xff));
  U8(static_cast<uint8_t>(v >> 8));
}

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void WireWriter::F64(double v) { U64(DoubleBits(v)); }

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

Status WireReader::Need(size_t n) const {
  if (buf_.size() - pos_ < n) {
    return Status(StatusCode::kParseError, "wire: short read");
  }
  return Status::OK();
}

Status WireReader::U8(uint8_t* v) {
  CV_RETURN_NOT_OK(Need(1));
  *v = static_cast<uint8_t>(buf_[pos_++]);
  return Status::OK();
}

Status WireReader::U16(uint16_t* v) {
  CV_RETURN_NOT_OK(Need(2));
  uint16_t out = 0;
  for (int i = 0; i < 2; ++i) {
    out |= static_cast<uint16_t>(static_cast<uint8_t>(buf_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 2;
  *v = out;
  return Status::OK();
}

Status WireReader::U32(uint32_t* v) {
  CV_RETURN_NOT_OK(Need(4));
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status WireReader::U64(uint64_t* v) {
  CV_RETURN_NOT_OK(Need(8));
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(buf_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status WireReader::I64(int64_t* v) {
  uint64_t bits = 0;
  CV_RETURN_NOT_OK(U64(&bits));
  *v = static_cast<int64_t>(bits);
  return Status::OK();
}

Status WireReader::F64(double* v) {
  uint64_t bits = 0;
  CV_RETURN_NOT_OK(U64(&bits));
  *v = BitsDouble(bits);
  return Status::OK();
}

Status WireReader::Bool(bool* v) {
  uint8_t b = 0;
  CV_RETURN_NOT_OK(U8(&b));
  if (b > 1) return Status(StatusCode::kParseError, "wire: bad bool");
  *v = b != 0;
  return Status::OK();
}

Status WireReader::Str(std::string* s) {
  uint32_t len = 0;
  CV_RETURN_NOT_OK(U32(&len));
  if (len > kMaxStringBytes) {
    // Checked against the declared length before Need/assign so a hostile
    // length field inside a valid frame can never drive an allocation.
    return Status(StatusCode::kOutOfRange, "wire: string too long");
  }
  CV_RETURN_NOT_OK(Need(len));
  s->assign(buf_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status WireReader::ExpectEnd() const {
  if (pos_ != buf_.size()) {
    return Status(StatusCode::kParseError, "wire: trailing bytes in payload");
  }
  return Status::OK();
}

std::string EncodeFrame(MsgType type, std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.push_back(kMagic0);
  frame.push_back(kMagic1);
  frame.push_back(static_cast<char>(kProtocolVersion));
  frame.push_back(static_cast<char>(type));
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  frame.append(payload.data(), payload.size());
  return frame;
}

Status DecodeFrameHeader(const char* bytes, FrameHeader* out) {
  if (bytes[0] != kMagic0 || bytes[1] != kMagic1) {
    return Status(StatusCode::kAborted, "wire: bad magic");
  }
  out->version = static_cast<uint8_t>(bytes[2]);
  out->type = static_cast<uint8_t>(bytes[3]);
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[4 + i]))
           << (8 * i);
  }
  out->payload_len = len;
  if (out->version != kProtocolVersion) {
    return Status(StatusCode::kUnimplemented, "wire: protocol version " +
                                                  std::to_string(out->version) +
                                                  " unsupported");
  }
  if (len > kMaxPayloadBytes) {
    return Status(StatusCode::kOutOfRange, "wire: oversized frame (" +
                                               std::to_string(len) +
                                               " bytes)");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Requests

void EncodeSubmitRequest(const SubmitRequest& req, WireWriter* w) {
  w->Str(req.script);
  w->U32(static_cast<uint32_t>(req.params.size()));
  for (const WireParam& p : req.params) {
    w->Str(p.name);
    w->U8(static_cast<uint8_t>(p.kind));
    w->Str(p.text);
    w->I64(p.int_value);
  }
  w->Str(req.template_id);
  w->Str(req.cluster);
  w->Str(req.business_unit);
  w->Str(req.vc);
  w->Str(req.user);
  w->I64(req.recurring_instance);
  w->I64(req.recurrence_period_seconds);
  w->U32(static_cast<uint32_t>(req.tags.size()));
  for (const std::string& t : req.tags) w->Str(t);
  w->Bool(req.enable_cloudviews);
  w->Bool(req.wait);
}

Status DecodeSubmitRequest(std::string_view payload, SubmitRequest* out) {
  WireReader r(payload);
  CV_RETURN_NOT_OK(r.Str(&out->script));
  uint32_t nparams = 0;
  CV_RETURN_NOT_OK(r.U32(&nparams));
  if (nparams > kMaxListItems) {
    return Status(StatusCode::kOutOfRange, "wire: too many params");
  }
  out->params.clear();
  out->params.reserve(nparams);
  for (uint32_t i = 0; i < nparams; ++i) {
    WireParam p;
    CV_RETURN_NOT_OK(r.Str(&p.name));
    uint8_t kind = 0;
    CV_RETURN_NOT_OK(r.U8(&kind));
    if (kind > static_cast<uint8_t>(WireParamKind::kString)) {
      return Status(StatusCode::kParseError, "wire: unknown param kind");
    }
    p.kind = static_cast<WireParamKind>(kind);
    CV_RETURN_NOT_OK(r.Str(&p.text));
    CV_RETURN_NOT_OK(r.I64(&p.int_value));
    out->params.push_back(std::move(p));
  }
  CV_RETURN_NOT_OK(r.Str(&out->template_id));
  CV_RETURN_NOT_OK(r.Str(&out->cluster));
  CV_RETURN_NOT_OK(r.Str(&out->business_unit));
  CV_RETURN_NOT_OK(r.Str(&out->vc));
  CV_RETURN_NOT_OK(r.Str(&out->user));
  CV_RETURN_NOT_OK(r.I64(&out->recurring_instance));
  CV_RETURN_NOT_OK(r.I64(&out->recurrence_period_seconds));
  uint32_t ntags = 0;
  CV_RETURN_NOT_OK(r.U32(&ntags));
  if (ntags > kMaxListItems) {
    return Status(StatusCode::kOutOfRange, "wire: too many tags");
  }
  out->tags.clear();
  out->tags.reserve(ntags);
  for (uint32_t i = 0; i < ntags; ++i) {
    std::string t;
    CV_RETURN_NOT_OK(r.Str(&t));
    out->tags.push_back(std::move(t));
  }
  CV_RETURN_NOT_OK(r.Bool(&out->enable_cloudviews));
  CV_RETURN_NOT_OK(r.Bool(&out->wait));
  return r.ExpectEnd();
}

void EncodeStatusQueryRequest(const StatusQueryRequest& req, WireWriter* w) {
  w->U64(req.ticket);
}

Status DecodeStatusQueryRequest(std::string_view payload,
                                StatusQueryRequest* out) {
  WireReader r(payload);
  CV_RETURN_NOT_OK(r.U64(&out->ticket));
  return r.ExpectEnd();
}

void EncodeProfileFetchRequest(const ProfileFetchRequest& req, WireWriter* w) {
  w->U64(req.ticket);
}

Status DecodeProfileFetchRequest(std::string_view payload,
                                 ProfileFetchRequest* out) {
  WireReader r(payload);
  CV_RETURN_NOT_OK(r.U64(&out->ticket));
  return r.ExpectEnd();
}

// ---------------------------------------------------------------------------
// Responses

namespace {

void AppendOutcome(const JobOutcome& o, WireWriter* w) {
  w->U64(o.job_id);
  w->U64(o.catalog_epoch);
  w->I64(o.output_rows);
  w->I64(o.output_bytes);
  w->U64(o.output_fingerprint.hi);
  w->U64(o.output_fingerprint.lo);
  w->U32(static_cast<uint32_t>(o.views_reused));
  w->U32(static_cast<uint32_t>(o.views_materialized));
  w->U32(static_cast<uint32_t>(o.reuse_rejected_by_cost));
  w->U32(static_cast<uint32_t>(o.materialize_lock_denied));
  w->U32(static_cast<uint32_t>(o.candidates_filtered));
  w->U32(static_cast<uint32_t>(o.containment_verified));
  w->U32(static_cast<uint32_t>(o.containment_rejected));
  w->U32(static_cast<uint32_t>(o.views_reused_subsumed));
  w->U32(static_cast<uint32_t>(o.compensation_nodes_added));
  w->U32(static_cast<uint32_t>(o.views_fallback));
  w->Bool(o.lookup_degraded);
  w->Bool(o.plan_cache_hit);
}

Status ReadCounter(WireReader* r, int32_t* v) {
  uint32_t raw = 0;
  CV_RETURN_NOT_OK(r->U32(&raw));
  *v = static_cast<int32_t>(raw);
  return Status::OK();
}

void AppendTimings(const WireTimings& t, WireWriter* w) {
  w->F64(t.latency_seconds);
  w->F64(t.cpu_seconds);
  w->F64(t.compile_seconds);
  w->F64(t.metadata_lookup_seconds);
  w->F64(t.queue_seconds);
  w->F64(t.estimated_cost);
}

Status ReadTimings(WireReader* r, WireTimings* t) {
  CV_RETURN_NOT_OK(r->F64(&t->latency_seconds));
  CV_RETURN_NOT_OK(r->F64(&t->cpu_seconds));
  CV_RETURN_NOT_OK(r->F64(&t->compile_seconds));
  CV_RETURN_NOT_OK(r->F64(&t->metadata_lookup_seconds));
  CV_RETURN_NOT_OK(r->F64(&t->queue_seconds));
  CV_RETURN_NOT_OK(r->F64(&t->estimated_cost));
  return Status::OK();
}

}  // namespace

std::string EncodeJobOutcome(const JobOutcome& outcome) {
  WireWriter w;
  AppendOutcome(outcome, &w);
  return w.Take();
}

Status DecodeJobOutcome(WireReader* r, JobOutcome* out) {
  CV_RETURN_NOT_OK(r->U64(&out->job_id));
  CV_RETURN_NOT_OK(r->U64(&out->catalog_epoch));
  CV_RETURN_NOT_OK(r->I64(&out->output_rows));
  CV_RETURN_NOT_OK(r->I64(&out->output_bytes));
  CV_RETURN_NOT_OK(r->U64(&out->output_fingerprint.hi));
  CV_RETURN_NOT_OK(r->U64(&out->output_fingerprint.lo));
  CV_RETURN_NOT_OK(ReadCounter(r, &out->views_reused));
  CV_RETURN_NOT_OK(ReadCounter(r, &out->views_materialized));
  CV_RETURN_NOT_OK(ReadCounter(r, &out->reuse_rejected_by_cost));
  CV_RETURN_NOT_OK(ReadCounter(r, &out->materialize_lock_denied));
  CV_RETURN_NOT_OK(ReadCounter(r, &out->candidates_filtered));
  CV_RETURN_NOT_OK(ReadCounter(r, &out->containment_verified));
  CV_RETURN_NOT_OK(ReadCounter(r, &out->containment_rejected));
  CV_RETURN_NOT_OK(ReadCounter(r, &out->views_reused_subsumed));
  CV_RETURN_NOT_OK(ReadCounter(r, &out->compensation_nodes_added));
  CV_RETURN_NOT_OK(ReadCounter(r, &out->views_fallback));
  CV_RETURN_NOT_OK(r->Bool(&out->lookup_degraded));
  CV_RETURN_NOT_OK(r->Bool(&out->plan_cache_hit));
  return Status::OK();
}

void EncodeSubmitResultResponse(const SubmitResultResponse& resp,
                                WireWriter* w) {
  w->U64(resp.ticket);
  AppendOutcome(resp.outcome, w);
  AppendTimings(resp.timings, w);
}

Status DecodeSubmitResultResponse(std::string_view payload,
                                  SubmitResultResponse* out) {
  WireReader r(payload);
  CV_RETURN_NOT_OK(r.U64(&out->ticket));
  CV_RETURN_NOT_OK(DecodeJobOutcome(&r, &out->outcome));
  CV_RETURN_NOT_OK(ReadTimings(&r, &out->timings));
  return r.ExpectEnd();
}

void EncodeAcceptedResponse(const AcceptedResponse& resp, WireWriter* w) {
  w->U64(resp.ticket);
}

Status DecodeAcceptedResponse(std::string_view payload,
                              AcceptedResponse* out) {
  WireReader r(payload);
  CV_RETURN_NOT_OK(r.U64(&out->ticket));
  return r.ExpectEnd();
}

void EncodeStatusResultResponse(const StatusResultResponse& resp,
                                WireWriter* w) {
  w->U64(resp.ticket);
  w->U8(static_cast<uint8_t>(resp.state));
  AppendOutcome(resp.outcome, w);
  AppendTimings(resp.timings, w);
  w->U8(resp.error_code);
  w->Str(resp.error_message);
}

Status DecodeStatusResultResponse(std::string_view payload,
                                  StatusResultResponse* out) {
  WireReader r(payload);
  CV_RETURN_NOT_OK(r.U64(&out->ticket));
  uint8_t state = 0;
  CV_RETURN_NOT_OK(r.U8(&state));
  if (state > static_cast<uint8_t>(WireJobState::kFailed)) {
    return Status(StatusCode::kParseError, "wire: unknown job state");
  }
  out->state = static_cast<WireJobState>(state);
  CV_RETURN_NOT_OK(DecodeJobOutcome(&r, &out->outcome));
  CV_RETURN_NOT_OK(ReadTimings(&r, &out->timings));
  CV_RETURN_NOT_OK(r.U8(&out->error_code));
  CV_RETURN_NOT_OK(r.Str(&out->error_message));
  return r.ExpectEnd();
}

void EncodeProfileResultResponse(const ProfileResultResponse& resp,
                                 WireWriter* w) {
  w->U64(resp.ticket);
  w->Str(resp.profile_json);
}

Status DecodeProfileResultResponse(std::string_view payload,
                                   ProfileResultResponse* out) {
  WireReader r(payload);
  CV_RETURN_NOT_OK(r.U64(&out->ticket));
  CV_RETURN_NOT_OK(r.Str(&out->profile_json));
  return r.ExpectEnd();
}

void EncodeServerStatsResponse(const ServerStatsResponse& resp,
                               WireWriter* w) {
  w->U64(resp.accepted);
  w->U64(resp.completed);
  w->U64(resp.failed);
  w->U64(resp.shed_queue_full);
  w->U64(resp.shed_conn_cap);
  w->U64(resp.shed_draining);
  w->U64(resp.shed_injected);
  w->U64(resp.queue_depth);
  w->U64(resp.inflight);
  w->U64(resp.connections);
}

Status DecodeServerStatsResponse(std::string_view payload,
                                 ServerStatsResponse* out) {
  WireReader r(payload);
  CV_RETURN_NOT_OK(r.U64(&out->accepted));
  CV_RETURN_NOT_OK(r.U64(&out->completed));
  CV_RETURN_NOT_OK(r.U64(&out->failed));
  CV_RETURN_NOT_OK(r.U64(&out->shed_queue_full));
  CV_RETURN_NOT_OK(r.U64(&out->shed_conn_cap));
  CV_RETURN_NOT_OK(r.U64(&out->shed_draining));
  CV_RETURN_NOT_OK(r.U64(&out->shed_injected));
  CV_RETURN_NOT_OK(r.U64(&out->queue_depth));
  CV_RETURN_NOT_OK(r.U64(&out->inflight));
  CV_RETURN_NOT_OK(r.U64(&out->connections));
  return r.ExpectEnd();
}

void EncodeErrorResponse(const ErrorResponse& resp, WireWriter* w) {
  w->U8(resp.code);
  w->Str(resp.message);
}

Status DecodeErrorResponse(std::string_view payload, ErrorResponse* out) {
  WireReader r(payload);
  CV_RETURN_NOT_OK(r.U8(&out->code));
  if (out->code > static_cast<uint8_t>(StatusCode::kViewUnavailable)) {
    return Status(StatusCode::kParseError, "wire: unknown status code");
  }
  CV_RETURN_NOT_OK(r.Str(&out->message));
  return r.ExpectEnd();
}

void EncodeRetryAfterResponse(const RetryAfterResponse& resp, WireWriter* w) {
  w->U8(static_cast<uint8_t>(resp.reason));
  w->U32(resp.retry_after_ms);
}

Status DecodeRetryAfterResponse(std::string_view payload,
                                RetryAfterResponse* out) {
  WireReader r(payload);
  uint8_t reason = 0;
  CV_RETURN_NOT_OK(r.U8(&reason));
  if (reason > static_cast<uint8_t>(ShedReason::kInjected)) {
    return Status(StatusCode::kParseError, "wire: unknown shed reason");
  }
  out->reason = static_cast<ShedReason>(reason);
  CV_RETURN_NOT_OK(r.U32(&out->retry_after_ms));
  return r.ExpectEnd();
}

}  // namespace net
}  // namespace cloudviews
