// Fixture: seeded naked-new violation.
struct Widget {
  int size = 0;
};

Widget* MakeWidget() { return new Widget(); }
